"""Tests for the volatile-node substrate (hosts, disk, database, churn, faults)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.message import Message, MessageType
from repro.net.transport import Network
from repro.nodes.churn import ExponentialChurn, NoChurn, TraceChurn, WeibullChurn
from repro.nodes.database import Database, DatabaseModel
from repro.nodes.disk import DiskModel
from repro.nodes.faultgen import FaultGenerator, FaultScript, ScriptedEvent
from repro.nodes.node import Host
from repro.sim.core import ProcessKilled
from repro.sim.rng import RandomStreams
from repro.types import Address


class TestDiskModel:
    def test_sync_write_scales_with_size(self):
        disk = DiskModel()
        assert disk.sync_write_time(10**7) > disk.sync_write_time(10**3)

    def test_cached_write_cheaper_than_sync(self):
        disk = DiskModel()
        assert disk.cached_write_sync_time(10**6) < disk.sync_write_time(10**6)

    def test_background_foreground_time_is_small(self):
        disk = DiskModel()
        assert disk.background_write_foreground_time(10**6) < 0.1 * disk.sync_write_time(10**6)

    def test_background_completion_slower_than_sync(self):
        disk = DiskModel()
        assert disk.background_write_completion_time(10**6) > disk.sync_write_time(10**6)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskModel(write_bandwidth_bps=0)
        with pytest.raises(ConfigurationError):
            DiskModel(cache_sync_fraction=2.0)


class TestDatabase:
    def test_write_then_read_roundtrip(self):
        database = Database()
        cost = database.charge_write("k", {"state": "pending"}, 300)
        assert cost > 0
        record, read_cost = database.charge_read("k", 300)
        assert record == {"state": "pending"}
        assert read_cost > 0

    def test_missing_key_reads_none(self):
        database = Database()
        record, _ = database.charge_read("missing")
        assert record is None

    def test_scan_cost_grows_with_records(self):
        database = Database()
        empty_scan = database.charge_scan()
        for index in range(1000):
            database.charge_write(index, {}, 10)
        assert database.charge_scan() > empty_scan

    def test_time_charged_accumulates(self):
        database = Database()
        database.charge_write("a", {}, 100)
        database.charge_write("b", {}, 100)
        assert database.time_charged == pytest.approx(2 * database.model.write_time(100))

    def test_uncharged_accessors(self):
        database = Database()
        database.charge_write("a", {"x": 1}, 10)
        assert database.contains("a")
        assert database.get("a") == {"x": 1}
        assert database.keys() == ["a"]
        assert len(database) == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseModel(write_op_latency=-1.0)


class TestChurn:
    def test_no_churn_is_eternal(self):
        model = NoChurn()
        rng = RandomStreams(0)
        assert model.uptime(rng, "n") == float("inf")

    def test_exponential_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentialChurn(mtbf=0)

    def test_exponential_draws_positive(self):
        model = ExponentialChurn(mtbf=100.0, mttr=10.0)
        rng = RandomStreams(1)
        assert model.uptime(rng, "n") > 0
        assert model.downtime(rng, "n") > 0

    def test_exponential_permanent_fraction_one_never_returns(self):
        model = ExponentialChurn(mtbf=100.0, mttr=10.0, permanent_fraction=1.0)
        assert model.downtime(RandomStreams(1), "n") == float("inf")

    def test_weibull_draws_positive(self):
        model = WeibullChurn()
        rng = RandomStreams(2)
        assert model.uptime(rng, "n") > 0
        assert model.downtime(rng, "n") > 0

    def test_trace_churn_replays_and_cycles(self):
        model = TraceChurn(pairs=[(10.0, 1.0), (20.0, 2.0)])
        rng = RandomStreams(0)
        ups = [model.uptime(rng, "n") for _ in range(3)]
        downs = []
        model2 = TraceChurn(pairs=[(10.0, 1.0), (20.0, 2.0)])
        for _ in range(3):
            model2.uptime(rng, "m")
            downs.append(model2.downtime(rng, "m"))
        assert ups == [10.0, 20.0, 10.0]
        assert downs == [1.0, 2.0, 1.0]

    def test_trace_churn_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TraceChurn(pairs=[])


class TestHost:
    def _host(self, env, name="h0"):
        network = Network(env)
        return Host(env, network, Address("server", name), rng=RandomStreams(0))

    def test_spawn_and_run_process(self, env):
        host = self._host(env)

        def proc():
            yield host.sleep(2.0)
            return env.now

        process = host.spawn(proc())
        env.run()
        assert process.value == 2.0

    def test_crash_kills_processes_and_mailbox(self, env):
        host = self._host(env)
        other = Host(env, host.network, Address("client", "c"), rng=RandomStreams(1))

        def long_runner():
            try:
                yield host.sleep(100.0)
                return "finished"
            except ProcessKilled:  # pragma: no cover - killed silently
                return "killed"

        process = host.spawn(long_runner())
        other.send(Message(MessageType.PING, other.address, host.address))
        env.run(until=1.0)
        host.crash()
        env.run()
        assert not process.is_alive
        assert not host.up
        assert len(host.endpoint.mailbox) == 0
        assert host.crash_count == 1

    def test_crash_preserves_persistent_state(self, env):
        host = self._host(env)
        host.persistent["log"] = {"a": 1}
        host.volatile["cache"] = "x"
        host.crash()
        assert host.persistent == {"log": {"a": 1}}
        assert host.volatile == {}

    def test_restart_invokes_callback_and_bumps_incarnation(self, env):
        host = self._host(env)
        calls = []
        host.on_restart(lambda h: calls.append(h.incarnation))
        host.crash()
        host.restart()
        assert host.up
        assert host.incarnation == 1
        assert calls == [1]

    def test_spawn_on_crashed_host_rejected(self, env):
        host = self._host(env)
        host.crash()
        with pytest.raises(ConfigurationError):
            host.spawn((x for x in []))

    def test_send_while_down_is_dropped(self, env):
        host = self._host(env)
        other = Host(env, host.network, Address("client", "c"), rng=RandomStreams(1))
        host.crash()
        host.send(Message(MessageType.PING, host.address, other.address))
        env.run()
        assert other.endpoint.delivered == 0

    def test_availability_tracks_downtime(self, env):
        host = self._host(env)
        env.run(until=10.0)
        host.crash()
        env.timeout(10.0)
        env.run(until=20.0)
        assert host.availability() == pytest.approx(0.5)

    def test_disk_write_takes_time(self, env):
        host = self._host(env)

        def proc():
            yield from host.disk_write(10_000_000)
            return env.now

        process = host.spawn(proc())
        env.run()
        assert process.value == pytest.approx(host.disk.sync_write_time(10_000_000))


class TestFaultGenerator:
    def _hosts(self, env, count=4):
        network = Network(env)
        return [
            Host(env, network, Address("server", f"s{i}"), rng=RandomStreams(i))
            for i in range(count)
        ]

    def test_zero_rate_injects_nothing(self, env):
        hosts = self._hosts(env)
        generator = FaultGenerator(env, hosts, RandomStreams(0), faults_per_minute=0.0)
        generator.start()
        env.run(until=600.0)
        assert generator.injected == 0

    def test_positive_rate_injects_and_restarts(self, env):
        hosts = self._hosts(env)
        generator = FaultGenerator(
            env, hosts, RandomStreams(3), faults_per_minute=30.0, restart_delay=1.0
        )
        generator.start()
        env.run(until=300.0)
        generator.stop()
        env.run(until=400.0)
        assert generator.injected > 0
        assert all(host.up for host in hosts)

    def test_manual_kill_and_permanent_failure(self, env):
        hosts = self._hosts(env, count=1)
        generator = FaultGenerator(env, hosts, RandomStreams(0))
        generator.kill(hosts[0], restart_after=float("inf"))
        env.run(until=100.0)
        assert not hosts[0].up

    def test_negative_rate_rejected(self, env):
        with pytest.raises(ConfigurationError):
            FaultGenerator(env, [], RandomStreams(0), faults_per_minute=-1.0)


class TestFaultScript:
    def test_scripted_kill_and_restart(self, env):
        network = Network(env)
        host = Host(env, network, Address("coordinator", "k0"), rng=RandomStreams(0))
        script = FaultScript()
        script.kill(10.0, str(host.address)).restart(20.0, str(host.address))
        script.install(env, [host])
        env.run(until=15.0)
        assert not host.up
        env.run(until=25.0)
        assert host.up

    def test_unknown_target_raises(self, env):
        script = FaultScript().kill(1.0, "coordinator:nowhere")
        script.install(env, [])
        with pytest.raises(ConfigurationError):
            env.run(until=5.0)

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            ScriptedEvent(time=-1.0, action="kill", target="x")
        with pytest.raises(ConfigurationError):
            ScriptedEvent(time=1.0, action="explode", target="x")  # type: ignore[arg-type]

    def test_targets_listed(self):
        script = FaultScript().kill(1.0, "a").restart(2.0, "b")
        assert script.targets() == {"a", "b"}
