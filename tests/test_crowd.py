"""Crowd-tier tests: sharding, the population table, and shard handoff.

The integration tests drive a real grid — live coordinators and servers —
with the statistical crowd riding the aggregated batch envelopes, including
the ISSUE's headline fault: kill one of k sharded coordinators mid-surge
and prove the ring successor adopts the shard with no client ever committed
twice.
"""

from __future__ import annotations

import pytest

from repro.crowd.sharding import ShardMap
from repro.errors import ConfigurationError
from repro.scenarios.engine import GridTopology
from repro.scenarios.runner import run_scenario
from repro.types import Address, TaskState


def _coordinators(k: int) -> list[Address]:
    return [Address("coordinator", f"cluster-k{i}") for i in range(k)]


class TestShardMap:
    def test_ring_order_and_dedup(self):
        shards = ShardMap.over(reversed(_coordinators(3)), 9)
        assert [a.name for a in shards.coordinators] == [
            "cluster-k0", "cluster-k1", "cluster-k2",
        ]
        assert ShardMap.over(_coordinators(2) * 3, 4).shard_count == 2
        with pytest.raises(ConfigurationError):
            ShardMap.over([], 4)
        with pytest.raises(ConfigurationError):
            ShardMap.over(_coordinators(2), -1)

    @pytest.mark.parametrize("n,k", [(9, 3), (10, 3), (11, 3), (1, 4), (100, 7)])
    def test_bounds_partition_exactly(self, n, k):
        shards = ShardMap.over(_coordinators(k), n)
        covered = []
        for shard in range(k):
            lo, hi = shards.shard_bounds(shard)
            covered.extend(range(lo, hi))
            # Blocks differ in size by at most one.
            assert hi - lo in (n // k, n // k + 1)
        assert covered == list(range(n))
        for client_id in range(n):
            shard = shards.shard_of(client_id)
            lo, hi = shards.shard_bounds(shard)
            assert lo <= client_id < hi

    def test_owner_walks_ring_past_suspected(self):
        shards = ShardMap.over(_coordinators(3), 9)
        k0, k1, k2 = shards.coordinators
        assert shards.owner(1) == k1
        assert shards.owner(1, {k1}) == k2
        assert shards.owner(2, {k2}) == k0
        assert shards.owner(1, {k1, k2}) == k0
        assert shards.owner(0, {k0, k1, k2}) is None

    def test_out_of_range_raises(self):
        shards = ShardMap.over(_coordinators(2), 4)
        with pytest.raises(ConfigurationError):
            shards.shard_bounds(2)
        with pytest.raises(ConfigurationError):
            shards.shard_of(4)


class TestCrowdTable:
    def _table(self, n=100, window=50.0, seed=3):
        np = pytest.importorskip("numpy")
        from repro.crowd.table import CrowdTable

        return CrowdTable(n, np.random.default_rng(seed), think_window=window)

    def test_arrivals_within_window_and_lifecycle(self):
        np = pytest.importorskip("numpy")
        from repro.crowd import table as t

        tab = self._table()
        assert (tab.submit_at >= 0).all() and (tab.submit_at < 50.0).all()
        assert tab.due(25.0) == int(np.count_nonzero(tab.submit_at <= 25.0))
        ids = tab.claim(0, 100, batch_id=0, now=25.0, deadline=33.0)
        assert (tab.state[ids] == t.INFLIGHT).all()
        assert tab.queue_depth() == ids.size
        new = tab.mark_done(ids)
        assert new == ids.size and tab.completed == ids.size
        # A duplicate completion is counted, never double-committed.
        assert tab.mark_done(ids) == 0
        assert tab.duplicate_completions == ids.size
        assert tab.completed == ids.size

    def test_surge_compresses_preserving_order(self):
        np = pytest.importorskip("numpy")
        tab = self._table()
        before = tab.submit_at.copy()
        future = (tab.state == 0) & (before > 10.0)
        accelerated = tab.surge(10.0, 100.0)
        assert accelerated == int(np.count_nonzero(future))
        assert (tab.submit_at[future] <= 10.0 + 40.0 / 100.0 + 1e-9).all()
        order_before = np.argsort(before[future], kind="stable")
        order_after = np.argsort(tab.submit_at[future], kind="stable")
        assert (order_before == order_after).all()

    def test_lanes_are_deterministic_per_seed(self):
        np = pytest.importorskip("numpy")
        a, b = self._table(seed=9), self._table(seed=9)
        assert (a.submit_at == b.submit_at).all()
        assert (a.lane == b.lane).all()

    def test_id_ranges_counts_contiguous_runs(self):
        np = pytest.importorskip("numpy")
        from repro.crowd.table import id_ranges

        assert id_ranges(np.array([], dtype=np.int64)) == 0
        assert id_ranges(np.array([4])) == 1
        assert id_ranges(np.array([1, 2, 3, 7, 8, 11])) == 3


class TestNumpyGate:
    def test_missing_numpy_is_a_configuration_error(self, monkeypatch):
        import sys

        import repro.crowd
        from repro.crowd.component import CrowdComponent, _require_table

        # Simulate the import failing (numpy absent): None in sys.modules
        # makes the submodule import raise ImportError.
        monkeypatch.delattr(repro.crowd, "table", raising=False)
        monkeypatch.setitem(sys.modules, "repro.crowd.table", None)
        with pytest.raises(ConfigurationError, match="requires numpy"):
            _require_table()
        # The component gate fires before any builder wiring is touched.
        with pytest.raises(ConfigurationError, match="requires numpy"):
            CrowdComponent(n_clients=10).setup(None)

    def test_invalid_parameters_raise(self):
        from repro.crowd.component import CrowdComponent

        with pytest.raises(ConfigurationError):
            CrowdComponent(tick_period=0.0)
        with pytest.raises(ConfigurationError):
            CrowdComponent(retry_timeout=-1.0)


def _run_crowd_grid(
    n_clients: int,
    *,
    n_coordinators: int = 3,
    surge_at: float | None = None,
    surge_factor: float = 1.0,
    kill: tuple[float, str] | None = None,
    think_window: float = 60.0,
    horizon: float = 400.0,
):
    """A live grid serving a crowd; returns (grid, crowd) after the run."""
    pytest.importorskip("numpy")
    grid = GridTopology(
        n_servers=4, n_coordinators=n_coordinators, spread_servers=True
    ).build(None, seed=2)
    grid.start()
    crowd = grid.add_component(
        {
            "name": "tier.crowd",
            "params": {
                "n_clients": n_clients,
                "think_window": think_window,
                "exec_time_per_call": 0.002,
                "retry_timeout": 8.0,
                "result_patience": 30.0,
                "surge_at": surge_at,
                "surge_factor": surge_factor,
            },
        }
    )
    if kill is not None:
        at, target = kill
        grid.add_component(
            {
                "name": "inject.script",
                "params": {
                    "events": [{"time": at, "action": "kill", "target": target}]
                },
            }
        )
    grid.env.run(until=horizon)
    grid.stop()
    return grid, crowd


class TestCrowdIntegration:
    def test_crowd_completes_against_live_core(self):
        grid, crowd = _run_crowd_grid(500)
        stats = crowd.stats()
        assert stats["completed"] == 500
        assert stats["duplicate_completions"] == 0
        assert stats["batches_sent"] > 0
        # Kernel observability rides along in grid.stats().
        kernel = grid.stats()["kernel"]
        assert kernel["events_processed"] > 0
        assert "pool_hit_rate" in kernel and "wheel_flushes" in kernel

    def test_shard_handoff_on_coordinator_kill_mid_surge(self):
        # A wide think window keeps most of the population idle until the
        # surge compresses it, so the kill (2 s into the surge) catches the
        # dead coordinator's shard with batches still in flight.
        grid, crowd = _run_crowd_grid(
            1500,
            think_window=300.0,
            surge_at=30.0,
            surge_factor=100.0,
            kill=(32.0, "coordinator:cluster-k1"),
        )
        stats = crowd.stats()
        # The whole crowd still completes, exactly once per client.
        assert stats["completed"] == 1500
        assert stats["duplicate_completions"] == 0
        # The dead coordinator was suspected and its shard re-routed to the
        # ring successor, which acknowledged (completing the handoff).
        dead = Address("coordinator", "cluster-k1")
        assert dead in crowd.registry.suspected
        assert stats["suspicions"] >= 1
        assert stats["reroutes"] >= 1
        assert stats["handoffs"] >= 1
        assert stats["handoff_latency_max"] > 0.0
        assert crowd.shards.owner(1, crowd.registry.suspected) == Address(
            "coordinator", "cluster-k2"
        )
        # No batch double-commit: every batch key known anywhere finished on
        # at least one coordinator (a stale ONGOING replica on the dead
        # coordinator or behind replication lag is fine), every finished
        # record of a key agrees on its member count, and the distinct
        # batches partition the population exactly — the same client ids
        # never commit under two different batch keys.
        seen: set[tuple] = set()
        finished_counts: dict[tuple, set] = {}
        for coordinator in grid.coordinators:
            for key, task in coordinator.tasks.items():
                if not str(key[0]).startswith("crowd:"):
                    continue
                seen.add(key)
                if task.state is TaskState.FINISHED:
                    args = task.call.args or {}
                    finished_counts.setdefault(key, set()).add(args.get("count"))
        assert seen and seen == set(finished_counts), (
            seen - set(finished_counts)
        )
        assert all(len(sizes) == 1 for sizes in finished_counts.values())
        assert sum(next(iter(s)) for s in finished_counts.values()) == 1500

    def test_flash_crowd_rows_deterministic_across_jobs(self):
        pytest.importorskip("numpy")
        sequential = run_scenario("flash-crowd", scale="tiny", jobs=1)
        parallel = run_scenario("flash-crowd", scale="tiny", jobs=4)
        # The reduce selects only protocol/crowd fields, so rows are exactly
        # reproducible whatever the worker layout (the per-cell kernel pool
        # counters are process-cumulative and deliberately stay out of rows).
        assert sequential.rows == parallel.rows
        assert sequential.rows[0]["crowd_completion_ratio"] == 1.0
        assert all(row["double_committed"] == 0 for row in sequential.rows)
        assert any(row["handoffs"] >= 1 for row in sequential.rows)
        # Paired CRN arms saw identical fault-stream draws (the runner
        # enforces this; assert it survived the store round-trip too).
        fingerprints = {
            tuple(sorted(cell["outputs"]["fault_streams"].items()))
            for cell in sequential.cells
        }
        assert len(fingerprints) == 1
