"""Unit tests for the core protocol building blocks (no full grid)."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig
from repro.core.protocol import (
    CallDescription,
    ResultRecord,
    TASK_DESCRIPTION_BYTES,
    TaskRecord,
    identity_to_key,
    key_to_identity,
)
from repro.core.registry import CoordinatorRegistry
from repro.core.replication import ReplicaState, build_state, merge_state
from repro.core.scheduler import FcfsScheduler
from repro.core.services import ServiceRegistry, ServiceSpec, default_registry
from repro.core.session import Session
from repro.core.synchronization import (
    merge_max_timestamps,
    plan_client_sync,
    plan_server_sync,
)
from repro.errors import ConfigurationError, ServiceNotRegistered, SessionError
from repro.types import Address, CallIdentity, RPCId, SessionId, TaskState, UserId


def make_identity(counter: int, user: str = "u", session: str = "s") -> CallIdentity:
    return CallIdentity(UserId(user), SessionId(session), RPCId(counter))


def make_task(counter: int, state: TaskState = TaskState.PENDING, owner: str = "k0") -> TaskRecord:
    call = CallDescription(
        identity=make_identity(counter), service="sleep", params_bytes=100, exec_time=1.0
    )
    return TaskRecord(call=call, state=state, owner=owner, submitted_at=float(counter))


class TestProtocolRecords:
    def test_call_description_roundtrip(self):
        call = CallDescription(
            identity=make_identity(3), service="sleep", params_bytes=500,
            result_bytes=10, exec_time=2.0, args={"n": 1},
        )
        assert CallDescription.from_payload(call.to_payload()) == call

    def test_wire_bytes_includes_description(self):
        call = CallDescription(identity=make_identity(1), service="s", params_bytes=100)
        assert call.wire_bytes == 100 + TASK_DESCRIPTION_BYTES

    def test_task_record_replica_roundtrip(self):
        task = make_task(5, state=TaskState.ONGOING)
        task.assigned_server = Address("server", "s3")
        task.archive_holder = "coordinator:k1"
        restored = TaskRecord.from_replica_entry(task.to_replica_entry())
        assert restored.identity == task.identity
        assert restored.state is TaskState.ONGOING
        assert restored.assigned_server == Address("server", "s3")
        assert restored.archive_holder == "coordinator:k1"

    def test_result_record_roundtrip(self):
        result = ResultRecord(
            identity=make_identity(9), size_bytes=123,
            produced_by=Address("server", "s1"), produced_at=4.0, value=None,
        )
        restored = ResultRecord.from_payload(result.to_payload())
        assert restored.identity == result.identity
        assert restored.size_bytes == 123
        assert restored.produced_by == Address("server", "s1")

    def test_identity_key_roundtrip(self):
        identity = make_identity(7, user="alice", session="alice-s1")
        assert key_to_identity(identity_to_key(identity)) == identity


class TestSession:
    def test_allocation_is_monotonic(self):
        session = Session.open("alice")
        timestamps = [session.allocate().rpc.value for _ in range(5)]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == 5

    def test_closed_session_rejects_allocation(self):
        session = Session.open("alice")
        session.close()
        with pytest.raises(SessionError):
            session.allocate()

    def test_restore_counter_never_reuses_timestamps(self):
        session = Session.open("alice")
        session.allocate()
        session.restore_counter(10)
        assert session.allocate().rpc.value == 11

    def test_restore_counter_never_goes_backwards(self):
        session = Session.open("alice")
        for _ in range(5):
            session.allocate()
        session.restore_counter(2)
        assert session.allocate().rpc.value == 6

    def test_sessions_have_unique_ids(self):
        assert Session.open("a").session_id != Session.open("a").session_id


class TestCoordinatorRegistry:
    def _registry(self, n=3):
        return CoordinatorRegistry(
            coordinators=[Address("coordinator", f"k{i}") for i in range(n)]
        )

    def test_preferred_defaults_to_first(self):
        registry = self._registry()
        assert registry.preferred() == Address("coordinator", "k0")

    def test_switch_away_from_suspected(self):
        registry = self._registry()
        new = registry.switch_preferred(away_from=Address("coordinator", "k0"))
        assert new == Address("coordinator", "k1")
        assert Address("coordinator", "k0") in registry.suspected

    def test_rehabilitate_clears_suspicion(self):
        registry = self._registry()
        registry.switch_preferred(away_from=Address("coordinator", "k0"))
        registry.rehabilitate(Address("coordinator", "k0"))
        assert Address("coordinator", "k0") not in registry.suspected

    def test_all_suspected_falls_back_to_round_robin(self):
        registry = self._registry(2)
        registry.suspect(Address("coordinator", "k0"))
        registry.suspect(Address("coordinator", "k1"))
        assert registry.switch_preferred() is not None
        assert not registry.suspected  # forgiveness reset

    def test_set_preferred_requires_membership(self):
        registry = self._registry()
        with pytest.raises(ConfigurationError):
            registry.set_preferred(Address("coordinator", "unknown"))

    def test_merge_adds_only_new(self):
        registry = self._registry(2)
        added = registry.merge(
            [Address("coordinator", "k1"), Address("coordinator", "k9")]
        )
        assert added == 1
        assert len(registry) == 3

    def test_remove_keeps_preferred_consistent(self):
        registry = self._registry(3)
        registry.set_preferred(Address("coordinator", "k2"))
        registry.remove(Address("coordinator", "k1"))
        assert registry.preferred() == Address("coordinator", "k2")

    def test_ring_successor_skips_suspected(self):
        registry = self._registry(3)
        me = Address("coordinator", "k0")
        assert registry.ring_successor(me) == Address("coordinator", "k1")
        registry.suspect(Address("coordinator", "k1"))
        assert registry.ring_successor(me) == Address("coordinator", "k2")

    def test_ring_successor_alone_is_none(self):
        registry = CoordinatorRegistry(coordinators=[Address("coordinator", "k0")])
        assert registry.ring_successor(Address("coordinator", "k0")) is None

    def test_empty_registry_preferred_is_none(self):
        registry = CoordinatorRegistry(coordinators=[])
        assert registry.preferred() is None
        assert registry.switch_preferred() is None

    def test_duplicate_entries_deduplicated(self):
        a = Address("coordinator", "k0")
        registry = CoordinatorRegistry(coordinators=[a, a])
        assert len(registry) == 1


class TestScheduler:
    def test_fcfs_picks_oldest_pending(self):
        scheduler = FcfsScheduler()
        tasks = {i: make_task(i) for i in (3, 1, 2)}
        decision = scheduler.pick(tasks, Address("server", "s0"), "k0", lambda _o: False, now=10.0)
        assert decision.task is not None
        assert decision.task.identity.rpc.value == 1
        assert decision.task.state is TaskState.ONGOING
        assert decision.task.assigned_server == Address("server", "s0")

    def test_finished_tasks_never_scheduled(self):
        scheduler = FcfsScheduler()
        tasks = {1: make_task(1, state=TaskState.FINISHED)}
        decision = scheduler.pick(tasks, Address("server", "s0"), "k0", lambda _o: False, now=0.0)
        assert decision.task is None

    def test_ongoing_foreign_task_held_until_owner_suspected(self):
        scheduler = FcfsScheduler()
        tasks = {1: make_task(1, state=TaskState.ONGOING, owner="coordinator:other")}
        held = scheduler.pick(tasks, Address("server", "s0"), "k0", lambda _o: False, now=0.0)
        assert held.task is None
        released = scheduler.pick(tasks, Address("server", "s0"), "k0", lambda _o: True, now=0.0)
        assert released.task is not None

    def test_own_ongoing_task_not_rescheduled_by_pick(self):
        scheduler = FcfsScheduler()
        tasks = {1: make_task(1, state=TaskState.ONGOING, owner="k0")}
        decision = scheduler.pick(tasks, Address("server", "s0"), "k0", lambda _o: True, now=0.0)
        assert decision.task is None

    def test_reschedule_for_suspected_server(self):
        scheduler = FcfsScheduler()
        server = Address("server", "s0")
        task = make_task(1, state=TaskState.ONGOING, owner="k0")
        task.assigned_server = server
        tasks = {1: task}
        reset = scheduler.reschedule_for_suspected_server(tasks, server, "k0")
        assert len(reset) == 1
        assert task.state is TaskState.PENDING
        assert task.assigned_server is None

    def test_reschedule_respects_config_switch(self):
        scheduler = FcfsScheduler(SchedulerConfig(reschedule_on_suspicion=False))
        server = Address("server", "s0")
        task = make_task(1, state=TaskState.ONGOING, owner="k0")
        task.assigned_server = server
        assert scheduler.reschedule_for_suspected_server({1: task}, server, "k0") == []

    def test_attempts_incremented_on_assignment(self):
        scheduler = FcfsScheduler()
        tasks = {1: make_task(1)}
        scheduler.pick(tasks, Address("server", "s0"), "k0", lambda _o: False, now=0.0)
        assert tasks[1].attempts == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            FcfsScheduler(SchedulerConfig(policy="random"))


class TestReplication:
    def test_build_state_full_and_incremental(self):
        tasks = {identity_to_key(make_task(i).identity): make_task(i) for i in range(4)}
        full = build_state("k0", tasks, {}, [], only_keys=None)
        assert len(full) == 4
        some_key = next(iter(tasks))
        partial = build_state("k0", tasks, {}, [], only_keys={some_key})
        assert len(partial) == 1

    def test_state_payload_roundtrip(self):
        tasks = {identity_to_key(make_task(1).identity): make_task(1)}
        state = build_state("k0", tasks, {("u", "s"): 3}, [("coordinator", "k1")])
        restored = ReplicaState.from_payload(state.to_payload())
        assert len(restored) == 1
        assert restored.client_timestamps == {("u", "s"): 3}
        assert restored.known_coordinators == [("coordinator", "k1")]

    def test_size_excludes_params_of_finished_tasks(self):
        pending = make_task(1)
        finished = make_task(2, state=TaskState.FINISHED)
        tasks = {
            identity_to_key(pending.identity): pending,
            identity_to_key(finished.identity): finished,
        }
        state = build_state("k0", tasks, {}, [])
        assert state.size_bytes == 2 * TASK_DESCRIPTION_BYTES + pending.call.params_bytes

    def test_merge_adds_new_tasks(self):
        source_task = make_task(1)
        state = build_state(
            "k0", {identity_to_key(source_task.identity): source_task}, {}, []
        )
        local: dict = {}
        outcome = merge_state(local, {}, state, key_of=lambda r: identity_to_key(r.identity))
        assert outcome.new_tasks == 1
        assert len(local) == 1

    def test_merge_respects_state_precedence(self):
        key = identity_to_key(make_task(1).identity)
        local = {key: make_task(1, state=TaskState.FINISHED)}
        incoming = build_state("k1", {key: make_task(1, state=TaskState.PENDING)}, {}, [])
        outcome = merge_state(local, {}, incoming, key_of=lambda r: identity_to_key(r.identity))
        assert outcome.updated_tasks == 0
        assert local[key].state is TaskState.FINISHED

    def test_merge_reports_newly_finished(self):
        key = identity_to_key(make_task(1).identity)
        local = {key: make_task(1, state=TaskState.ONGOING)}
        incoming = build_state("k1", {key: make_task(1, state=TaskState.FINISHED)}, {}, [])
        outcome = merge_state(local, {}, incoming, key_of=lambda r: identity_to_key(r.identity))
        assert len(outcome.newly_finished) == 1
        assert local[key].state is TaskState.FINISHED

    def test_merge_is_idempotent(self):
        key = identity_to_key(make_task(1).identity)
        incoming = build_state("k1", {key: make_task(1, state=TaskState.FINISHED)}, {}, [])
        local: dict = {}
        merge_state(local, {}, incoming, key_of=lambda r: identity_to_key(r.identity))
        outcome = merge_state(local, {}, incoming, key_of=lambda r: identity_to_key(r.identity))
        assert outcome.new_tasks == 0
        assert outcome.updated_tasks == 0
        assert outcome.newly_finished == []

    def test_merge_advances_timestamps_monotonically(self):
        timestamps = {("u", "s"): 5}
        state = ReplicaState(origin="k1", client_timestamps={("u", "s"): 3})
        outcome = merge_state({}, timestamps, state, key_of=lambda r: None)
        assert outcome.timestamps_advanced == 0
        assert timestamps[("u", "s")] == 5


class TestSynchronizationPlans:
    def test_client_sync_plan_partitions_keys(self):
        plan = plan_client_sync(
            client_durable_keys=[1, 2, 3],
            coordinator_known_keys=[2, 3, 4],
            coordinator_finished_keys=[3, 4],
        )
        assert plan.client_must_resend == [1]
        assert plan.client_lost == [4]
        assert plan.results_available == [3, 4]
        assert plan.coordinator_max_timestamp == 4
        assert not plan.in_sync

    def test_client_sync_plan_in_sync(self):
        plan = plan_client_sync([1, 2], [1, 2], [])
        assert plan.in_sync

    def test_server_sync_plan(self):
        plan = plan_server_sync(
            server_result_keys=[("u", "s", 1), ("u", "s", 2)],
            coordinator_finished_keys=[("u", "s", 2)],
            coordinator_assigned_keys=[("u", "s", 3)],
        )
        assert plan.server_must_resend == [("u", "s", 1)]
        assert plan.already_finished == [("u", "s", 2)]
        assert plan.coordinator_must_requeue == [("u", "s", 3)]

    def test_merge_max_timestamps_only_moves_forward(self):
        mine = {("u", "s"): 5, ("u", "t"): 1}
        advanced = merge_max_timestamps(mine, {("u", "s"): 3, ("u", "t"): 4, ("v", "s"): 2})
        assert advanced == 2
        assert mine == {("u", "s"): 5, ("u", "t"): 4, ("v", "s"): 2}


class TestServices:
    def test_default_registry_contains_benchmark_services(self):
        registry = default_registry()
        assert registry.has("sleep")
        assert registry.has("echo")
        assert registry.has("network-validation")

    def test_unknown_service_raises(self):
        with pytest.raises(ServiceNotRegistered):
            ServiceRegistry().get("nope")

    def test_register_function_and_execute(self):
        registry = ServiceRegistry()
        registry.register_function("add", lambda a, b: a + b)
        assert registry.get("add").execute((2, 3)) == 5
        assert registry.get("add").execute({"a": 1, "b": 2}) == 3

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceSpec(name="")
        with pytest.raises(ConfigurationError):
            ServiceSpec(name="x", default_exec_time=-1.0)

    def test_execute_without_callable_is_identity(self):
        spec = ServiceSpec(name="sim-only")
        assert spec.execute({"x": 1}) == {"x": 1}
