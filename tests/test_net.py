"""Tests for the network substrate (messages, latency models, transport, partitions)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.latency import (
    CompositeLinkModel,
    InternetLinkModel,
    LanLinkModel,
    PerfectLinkModel,
)
from repro.net.message import (
    ENVELOPE_OVERHEAD_BYTES,
    Message,
    MessagePool,
    MessageType,
)
from repro.net.partition import PartitionManager
from repro.net.topology import Site, SiteMap
from repro.net.transport import Network
from repro.sim.rng import RandomStreams
from repro.types import Address


A = Address("client", "a")
B = Address("server", "b")


class TestMessage:
    def test_wire_bytes_adds_envelope(self):
        message = Message(MessageType.PING, A, B, size_bytes=100)
        assert message.wire_bytes == 100 + ENVELOPE_OVERHEAD_BYTES

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageType.PING, A, B, size_bytes=-1)

    def test_reply_swaps_endpoints(self):
        message = Message(MessageType.PING, A, B)
        reply = message.reply(MessageType.PONG, size_bytes=5)
        assert reply.source == B and reply.dest == A
        assert reply.mtype is MessageType.PONG

    def test_message_ids_are_unique(self):
        first = Message(MessageType.PING, A, B)
        second = Message(MessageType.PING, A, B)
        assert first.msg_id != second.msg_id


class TestLatencyModels:
    def test_lan_transfer_scales_with_size(self):
        model = LanLinkModel(jitter=0.0)
        rng = RandomStreams(0).stream("x")
        small = model.transfer_time(A, B, 1_000, rng)
        large = model.transfer_time(A, B, 10_000_000, rng)
        assert large > small
        assert small >= model.latency

    def test_lan_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LanLinkModel(bandwidth_bps=0)

    def test_internet_slower_than_lan_for_bulk(self):
        rng = RandomStreams(0)
        lan = LanLinkModel(jitter=0.0)
        wan = InternetLinkModel(stall_probability=0.0)
        size = 5_000_000
        lan_time = lan.transfer_time(A, B, size, rng.stream("a"))
        wan_time = wan.transfer_time(A, B, size, rng.stream("b"))
        assert wan_time > lan_time

    def test_internet_loss_probability_exposed(self):
        wan = InternetLinkModel(loss=0.01)
        assert wan.loss_probability(A, B) == 0.01

    def test_perfect_model_is_free(self):
        model = PerfectLinkModel()
        assert model.transfer_time(A, B, 10**9, RandomStreams(0).stream("x")) == 0.0
        assert model.loss_probability(A, B) == 0.0

    def test_composite_picks_intra_or_inter(self):
        composite = CompositeLinkModel(
            site_of={A: "x", B: "y"},
            intra_site=PerfectLinkModel(latency=0.001),
            inter_site=PerfectLinkModel(latency=0.5),
        )
        rng = RandomStreams(0).stream("x")
        assert composite.transfer_time(A, B, 0, rng) == 0.5
        composite.assign(B, "x")
        assert composite.transfer_time(A, B, 0, rng) == 0.001


class TestSiteMap:
    def test_place_and_lookup(self):
        site_map = SiteMap()
        site_map.add_site(Site("lille"))
        site_map.place(A, "lille")
        assert site_map.site_of(A) == "lille"

    def test_place_on_unknown_site_rejected(self):
        site_map = SiteMap()
        with pytest.raises(ConfigurationError):
            site_map.place(A, "nowhere")

    def test_unplaced_lookup_rejected(self):
        site_map = SiteMap()
        site_map.add_site(Site("lille"))
        with pytest.raises(ConfigurationError):
            site_map.site_of(A)

    def test_single_site_helper(self):
        site_map = SiteMap.single_site("cluster")
        site_map.place(A, "cluster")
        site_map.place(B, "cluster")
        assert site_map.same_site(A, B)

    def test_addresses_at_site(self):
        site_map = SiteMap()
        site_map.add_site(Site("lille"))
        site_map.add_site(Site("orsay"))
        site_map.place(A, "lille")
        site_map.place(B, "orsay")
        assert site_map.addresses_at("lille") == [A]


class TestPartitionManager:
    def test_allows_by_default(self):
        partitions = PartitionManager()
        assert partitions.allows(A, B)

    def test_one_way_hide(self):
        partitions = PartitionManager()
        partitions.hide(B, from_source=A)
        assert not partitions.allows(A, B)
        assert partitions.allows(B, A)

    def test_bidirectional_hide_and_unhide(self):
        partitions = PartitionManager()
        partitions.hide_bidirectional(A, B)
        assert not partitions.allows(A, B)
        assert not partitions.allows(B, A)
        partitions.unhide_bidirectional(A, B)
        assert partitions.allows(A, B)

    def test_named_partition_and_heal(self):
        partitions = PartitionManager()
        partitions.partition("split", [A], [B])
        assert not partitions.allows(A, B)
        partitions.heal("split")
        assert partitions.allows(A, B)

    def test_heal_all(self):
        partitions = PartitionManager()
        partitions.hide(B, from_source=A)
        partitions.partition("split", [A], [B])
        partitions.heal_all()
        assert partitions.allows(A, B)

    def test_reachability_graph_excludes_blocked_edges(self):
        partitions = PartitionManager()
        partitions.hide(B, from_source=A)
        graph = partitions.reachability_graph([A, B])
        assert not graph.has_edge(A, B)
        assert graph.has_edge(B, A)


class TestNetwork:
    def test_register_and_duplicate_rejected(self, env):
        network = Network(env)
        network.register(A)
        with pytest.raises(ConfigurationError):
            network.register(A)

    def test_message_delivery(self, env):
        network = Network(env)
        network.register(A)
        endpoint_b = network.register(B)
        network.send(Message(MessageType.PING, A, B, size_bytes=10))
        env.run()
        assert endpoint_b.delivered == 1
        assert len(endpoint_b.mailbox) == 1

    def test_unknown_destination_is_counted_dropped(self, env):
        network = Network(env)
        network.register(A)
        network.send(Message(MessageType.PING, A, B))
        env.run()
        assert network.stats()["net.dropped.unknown_dest"] == 1

    def test_partition_blocks_delivery(self, env):
        network = Network(env)
        network.register(A)
        endpoint_b = network.register(B)
        network.partitions.hide_bidirectional(A, B)
        network.send(Message(MessageType.PING, A, B))
        env.run()
        assert endpoint_b.delivered == 0
        assert network.stats()["net.dropped.partition"] >= 1

    def test_down_endpoint_drops_message(self, env):
        network = Network(env)
        network.register(A)
        endpoint_b = network.register(B)
        network.set_endpoint_up(B, False)
        network.send(Message(MessageType.PING, A, B))
        env.run()
        assert endpoint_b.delivered == 0
        assert network.stats()["net.dropped.endpoint_down"] == 1

    def test_endpoint_down_clears_mailbox(self, env):
        network = Network(env)
        network.register(A)
        endpoint_b = network.register(B)
        network.send(Message(MessageType.PING, A, B))
        env.run()
        assert len(endpoint_b.mailbox) == 1
        endpoint_b.mark_down()
        assert len(endpoint_b.mailbox) == 0

    def test_lossy_link_eventually_drops(self, env):
        class AlwaysLossy(PerfectLinkModel):
            def loss_probability(self, source, dest):
                return 1.0

        network = Network(env, link_model=AlwaysLossy())
        network.register(A)
        endpoint_b = network.register(B)
        for _ in range(5):
            network.send(Message(MessageType.PING, A, B))
        env.run()
        assert endpoint_b.delivered == 0
        assert network.stats()["net.dropped.loss"] == 5

    def test_message_sent_while_down_not_delivered_after_restart(self, env):
        network = Network(env)
        network.register(A)
        endpoint_b = network.register(B)
        network.set_endpoint_up(B, False)
        network.send(Message(MessageType.PING, A, B))
        # The endpoint restarts before the message lands: the message was
        # addressed to the previous incarnation and must not leak into the
        # fresh mailbox.
        network.set_endpoint_up(B, True)
        env.run()
        assert endpoint_b.delivered == 0
        assert len(endpoint_b.mailbox) == 0
        assert endpoint_b.dropped_stale == 1
        assert network.stats()["net.dropped.stale_incarnation"] == 1

    def test_restart_mid_flight_drops_in_flight_traffic(self, env):
        network = Network(env, link_model=LanLinkModel(jitter=0.0))
        network.register(A)
        endpoint_b = network.register(B)
        network.send(Message(MessageType.PING, A, B, size_bytes=10_000))
        # Crash + restart while the message is still in flight.
        network.set_endpoint_up(B, False)
        network.set_endpoint_up(B, True)
        env.run()
        assert endpoint_b.delivered == 0
        assert network.stats()["net.dropped.stale_incarnation"] == 1

    def test_mark_up_on_live_endpoint_is_a_noop(self, env):
        network = Network(env, link_model=LanLinkModel(jitter=0.0))
        network.register(A)
        endpoint_b = network.register(B)
        network.send(Message(MessageType.PING, A, B, size_bytes=10_000))
        # A defensive re-assert of "up" must not invalidate in-flight traffic.
        network.set_endpoint_up(B, True)
        env.run()
        assert endpoint_b.incarnation == 0
        assert endpoint_b.delivered == 1

    def test_same_incarnation_delivery_unaffected(self, env):
        network = Network(env)
        network.register(A)
        endpoint_b = network.register(B)
        network.send(Message(MessageType.PING, A, B))
        env.run()
        assert endpoint_b.delivered == 1
        assert network.stats()["net.dropped.stale_incarnation"] == 0

    def test_loss_stream_consumed_uniformly(self, env):
        """Lossless sends still consume the loss stream draw-for-draw.

        This pins the determinism contract: toggling a lossy link model on a
        *different* pair does not reshuffle the loss stream consumed by the
        sends that follow.
        """
        rng_a = RandomStreams(7)
        rng_b = RandomStreams(7)
        network = Network(env, rng=rng_a)
        network.register(A)
        network.register(B)
        for _ in range(5):
            network.send(Message(MessageType.PING, A, B))
        # Five sends must have consumed exactly five draws from "net.loss".
        reference = rng_b.stream("net.loss")
        _ = [reference.random() for _ in range(5)]
        assert rng_a.stream("net.loss").random() == reference.random()

    def test_delivery_hook_invoked(self, env):
        network = Network(env)
        network.register(A)
        network.register(B)
        seen = []
        network.add_delivery_hook(lambda m: seen.append(m.mtype))
        network.send(Message(MessageType.PING, A, B))
        env.run()
        assert seen == [MessageType.PING]

    def test_transfer_time_orders_delivery_by_size(self, env):
        network = Network(env, link_model=LanLinkModel(jitter=0.0), rng=RandomStreams(1))
        network.register(A)
        endpoint_b = network.register(B)
        network.send(Message(MessageType.PING, A, B, size_bytes=10_000_000))
        network.send(Message(MessageType.PONG, A, B, size_bytes=10))
        env.run()
        first = endpoint_b.mailbox.try_get()
        assert first.mtype is MessageType.PONG


class TestBatchedDelivery:
    """recv_many: same-tick deliveries coalesce into one receiver resume."""

    def _zero_delay(self, env):
        network = Network(env, link_model=PerfectLinkModel(latency=0.0))
        network.register(A)
        return network, network.register(B)

    def test_same_tick_batch_resumes_receiver_once_in_fifo_order(self, env):
        network, endpoint = self._zero_delay(env)
        batches = []

        def receiver():
            while True:
                batch = yield endpoint.recv_many()
                batches.append([m.payload["n"] for m in batch])

        env.process(receiver())
        for n in range(3):
            network.send(Message(MessageType.PING, A, B, payload={"n": n}))
        env.run()
        # One resume, the whole same-tick batch, in delivery order.
        assert batches == [[0, 1, 2]]

    def test_batches_split_across_ticks(self, env):
        network, endpoint = self._zero_delay(env)
        batches = []

        def receiver():
            while True:
                batch = yield endpoint.recv_many()
                batches.append((env.now, [m.payload["n"] for m in batch]))

        def sender():
            network.send(Message(MessageType.PING, A, B, payload={"n": 0}))
            network.send(Message(MessageType.PING, A, B, payload={"n": 1}))
            yield env.timeout(1.0)
            network.send(Message(MessageType.PING, A, B, payload={"n": 2}))

        env.process(receiver())
        env.process(sender())
        env.run()
        assert batches == [(0.0, [0, 1]), (1.0, [2])]

    def test_backlog_delivered_whole_on_late_recv_many(self, env):
        network, endpoint = self._zero_delay(env)
        for n in range(4):
            network.send(Message(MessageType.PING, A, B, payload={"n": n}))
        env.run()

        def receiver():
            batch = yield endpoint.recv_many()
            return [m.payload["n"] for m in batch]

        process = env.process(receiver())
        env.run()
        assert process.value == [0, 1, 2, 3]

    def test_recv_and_recv_many_interleave_fifo(self, env):
        network, endpoint = self._zero_delay(env)

        def receiver():
            first = yield endpoint.recv()
            rest = yield endpoint.recv_many()
            return [first.payload["n"]] + [m.payload["n"] for m in rest]

        process = env.process(receiver())
        for n in range(3):
            network.send(Message(MessageType.PING, A, B, payload={"n": n}))
        env.run()
        assert process.value == [0, 1, 2]


class TestMessagePool:
    """Envelope pooling: recycling, the release contract, id monotonicity."""

    def test_acquire_release_reacquire_recycles_the_envelope(self):
        pool = MessagePool()
        first = pool.acquire(MessageType.PING, A, B, {"n": 1})
        assert pool.release(first)
        second = pool.acquire(MessageType.PONG, B, A, {"n": 2})
        assert second is first  # same envelope object, fully rewritten
        assert second.mtype is MessageType.PONG
        assert second.payload == {"n": 2}
        assert pool.stats()["hit_rate"] == 0.5  # one miss, one hit

    def test_msg_ids_stay_monotonic_across_recycling(self):
        pool = MessagePool()
        seen = []
        for n in range(5):
            message = pool.acquire(MessageType.PING, A, B, {"n": n})
            seen.append(message.msg_id)
            message.release()
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)
        # A plain user-held message keeps drawing from the same sequence.
        assert Message(MessageType.PING, A, B).msg_id > seen[-1]

    def test_ordinary_message_is_never_pooled(self):
        pool = MessagePool()
        message = Message(MessageType.PING, A, B)
        assert not message.release()
        assert not pool.release(message)
        assert pool.stats()["pooled"] == 0

    def test_buckets_keyed_by_payload_shape(self):
        pool = MessagePool()
        heartbeat = pool.acquire(MessageType.PING, A, B, {"working_on": None})
        heartbeat.release()
        # A different payload shape must not steal the heartbeat envelope.
        other = pool.acquire(MessageType.PING, A, B, {"job": 1, "rank": 2})
        assert other is not heartbeat
        again = pool.acquire(MessageType.PING, A, B, {"working_on": "job-7"})
        assert again is heartbeat

    def test_full_bucket_drops_release(self):
        pool = MessagePool(max_per_bucket=1)
        first = pool.acquire(MessageType.PING, A, B)
        second = pool.acquire(MessageType.PING, A, B)
        assert first.release()
        assert not second.release()
        stats = pool.stats()
        assert stats["dropped"] == 1
        assert stats["pooled"] == 1

    def test_double_release_is_rejected_by_capacity(self, env):
        # Releasing twice must not create two pooled aliases of one envelope.
        pool = MessagePool(max_per_bucket=1)
        message = pool.acquire(MessageType.PING, A, B)
        assert message.release()
        assert not message.release()
