"""TaskIndex equivalence and delta-replication regression tests (PR 10).

The coordinator's indexed data plane must be *behaviorally invisible*: every
view the :class:`~repro.core.taskindex.TaskIndex` maintains has to match what
the legacy full-table scan would compute, at every step of any mutation
sequence.  The property-style test here drives a seeded random sequence of
submit / assign / finish / merge / suspect / reschedule / requeue operations
through one table and asserts the index against a naive recomputation after
each op.  The delta-replication tests pin the other tentpole claim: an
incremental ``build_state`` touches only the dirty keys, never the table.
"""

from __future__ import annotations

import random

import pytest

from repro.core.protocol import (
    CallDescription,
    TASK_DESCRIPTION_BYTES,
    TaskRecord,
    identity_to_key,
)
from repro.core.replication import ReplicaState, build_state, merge_state
from repro.core.taskindex import TaskIndex
from repro.policies.scheduling import (
    FastestFirstSchedulerPolicy,
    FifoReschedulePolicy,
    RandomSchedulerPolicy,
    RoundRobinSchedulerPolicy,
    SchedulerPolicy,
    _sjf_key,
    fcfs_key,
)
from repro.sim.rng import RandomStreams
from repro.types import Address, CallIdentity, RPCId, SessionId, TaskState, UserId

MY_NAME = "k0"
OTHER_OWNERS = ("k1", "k2")
SERVERS = tuple(Address("server", f"s{i}") for i in range(4))


def make_call(counter: int, user: str = "u", exec_time: float | None = 1.0) -> CallDescription:
    return CallDescription(
        identity=CallIdentity(UserId(user), SessionId("s"), RPCId(counter)),
        service="sleep",
        params_bytes=100,
        exec_time=exec_time,
    )


def make_task(
    counter: int,
    state: TaskState = TaskState.PENDING,
    owner: str = MY_NAME,
    submitted_at: float | None = None,
    user: str = "u",
    exec_time: float | None = 1.0,
) -> TaskRecord:
    return TaskRecord(
        call=make_call(counter, user=user, exec_time=exec_time),
        state=state,
        owner=owner,
        submitted_at=float(counter) if submitted_at is None else submitted_at,
    )


def naive_eligible(tasks, my_name, owner_suspected):
    """The legacy scan, recomputed from scratch (the reference truth)."""
    policy = FifoReschedulePolicy()
    return policy.eligible_tasks(tasks, my_name, owner_suspected)


class TestIndexEquivalence:
    """Drive random op sequences; assert every index view against the scan."""

    def _assert_views_match(self, tasks, index, suspected):
        owner_suspected = lambda owner: owner in suspected  # noqa: E731
        reference = naive_eligible(tasks, MY_NAME, owner_suspected)
        reference_keys = [identity_to_key(r.identity) for r in reference]

        extras, held = index.eligible_extras(MY_NAME, owner_suspected)
        indexed = index.eligible_list(extras)
        indexed_keys = [identity_to_key(r.identity) for r in indexed]
        assert indexed_keys == reference_keys

        # Heads: FIFO and fastest-first must agree with the sorted scan.
        fifo_head = FifoReschedulePolicy().choose_indexed(
            index, extras, server=SERVERS[0], now=0.0
        )
        assert (fifo_head is None) == (not reference)
        if reference:
            assert fifo_head is reference[0]
            sjf_head = FastestFirstSchedulerPolicy().choose_indexed(
                index, extras, server=SERVERS[0], now=0.0
            )
            assert sjf_head is min(reference, key=_sjf_key)

        # Per-state counters vs a full count.
        counts = {state: 0 for state in TaskState}
        for record in tasks.values():
            counts[record.state] += 1
        assert index.state_counts() == counts
        assert index.finished == counts[TaskState.FINISHED]

        # The held count equals the legacy per-record dedup bookkeeping.
        released = {identity_to_key(r.identity) for r in extras}
        expected_held = sum(
            1
            for key, record in tasks.items()
            if record.state is TaskState.ONGOING and key not in released
        )
        assert held == expected_held

        # Per-server and per-owner ongoing buckets vs a table walk.
        for server in SERVERS:
            expected = {
                key
                for key, record in tasks.items()
                if record.state is TaskState.ONGOING
                and record.assigned_server == server
            }
            assert {key for key, _ in index.ongoing_on_server(server)} == expected
        for owner in (MY_NAME,) + OTHER_OWNERS:
            expected = {
                key
                for key, record in tasks.items()
                if record.state is TaskState.ONGOING and record.owner == owner
            }
            assert {key for key, _ in index.ongoing_owned_by(owner)} == expected

    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_random_op_sequence_matches_naive_scan(self, seed):
        rng = random.Random(seed)
        tasks: dict[tuple, TaskRecord] = {}
        index = TaskIndex(tasks)
        suspected: set[str] = set()
        owner_suspected = lambda owner: owner in suspected  # noqa: E731
        policy = FifoReschedulePolicy()
        next_id = 0
        now = 0.0

        for step in range(400):
            now += 0.25
            op = rng.choice(
                ["submit", "submit", "assign", "assign", "finish", "merge",
                 "suspect", "reschedule", "requeue"]
            )
            if op == "submit":
                record = make_task(next_id, submitted_at=now)
                key = identity_to_key(record.identity)
                tasks[key] = record
                index.note(record, key)
                next_id += 1
            elif op == "assign":
                decision = policy.pick(
                    tasks,
                    server=rng.choice(SERVERS),
                    my_name=MY_NAME,
                    owner_suspected=owner_suspected,
                    now=now,
                    index=index,
                )
                if decision.task is not None:
                    index.note(decision.task)
            elif op == "finish":
                ongoing = [r for r in tasks.values() if r.state is TaskState.ONGOING]
                if ongoing:
                    record = rng.choice(ongoing)
                    record.state = TaskState.FINISHED
                    record.finished_at = now
                    index.note(record)
            elif op == "merge":
                # A synthetic peer abstract: a few new records owned by a
                # peer (pending and ongoing), plus an upgrade of one of ours.
                peer = rng.choice(OTHER_OWNERS)
                incoming: dict[tuple, TaskRecord] = {}
                for _ in range(rng.randint(1, 3)):
                    record = make_task(
                        next_id,
                        state=rng.choice([TaskState.PENDING, TaskState.ONGOING]),
                        owner=peer,
                        submitted_at=now,
                        user=peer,
                    )
                    if record.state is TaskState.ONGOING:
                        record.assigned_server = rng.choice(SERVERS)
                    incoming[identity_to_key(record.identity)] = record
                    next_id += 1
                upgradable = [
                    r for r in tasks.values() if r.state is not TaskState.FINISHED
                ]
                if upgradable:
                    donor = rng.choice(upgradable)
                    upgrade = TaskRecord.from_replica_entry(donor.to_replica_entry())
                    upgrade.state = TaskState.FINISHED
                    upgrade.owner = peer
                    incoming[identity_to_key(upgrade.identity)] = upgrade
                state = build_state(peer, incoming, {}, [], now=now)
                outcome = merge_state(
                    tasks, {}, state,
                    key_of=lambda record: identity_to_key(record.identity),
                )
                for identity in outcome.changed:
                    key = identity_to_key(identity)
                    index.note(tasks[key], key)
            elif op == "suspect":
                owner = rng.choice(OTHER_OWNERS)
                if owner in suspected:
                    suspected.discard(owner)
                else:
                    suspected.add(owner)
            elif op == "reschedule":
                reset = policy.reschedule_for_suspected_server(
                    tasks, rng.choice(SERVERS), MY_NAME, index=index
                )
                for record in reset:
                    index.note(record)
            elif op == "requeue":
                mine = [
                    r
                    for r in tasks.values()
                    if r.state is TaskState.ONGOING and r.owner == MY_NAME
                ]
                if mine:
                    record = rng.choice(mine)
                    record.state = TaskState.PENDING
                    record.assigned_server = None
                    index.note(record)

            self._assert_views_match(tasks, index, suspected)

    @pytest.mark.parametrize(
        "policy_cls",
        [
            FifoReschedulePolicy,
            RandomSchedulerPolicy,
            RoundRobinSchedulerPolicy,
            FastestFirstSchedulerPolicy,
        ],
    )
    def test_indexed_picks_bit_identical_to_scan(self, policy_cls):
        """Two identical universes, one indexed: every pick chooses the same task."""

        def build_universe():
            tasks: dict[tuple, TaskRecord] = {}
            rng = random.Random(99)
            for counter in range(60):
                record = make_task(
                    counter,
                    submitted_at=float(counter // 3),  # ties broken by identity
                    exec_time=rng.choice([0.5, 1.0, 2.0, None]),
                )
                tasks[identity_to_key(record.identity)] = record
            ongoing = make_task(900, state=TaskState.ONGOING, owner="k1")
            tasks[identity_to_key(ongoing.identity)] = ongoing
            return tasks

        scan_tasks = build_universe()
        indexed_tasks = build_universe()
        index = TaskIndex(indexed_tasks)
        scan_policy = policy_cls().bind(MY_NAME, rng=RandomStreams(5))
        indexed_policy = policy_cls().bind(MY_NAME, rng=RandomStreams(5))
        suspected = lambda owner: owner == "k1"  # noqa: E731

        for step in range(61):
            a = scan_policy.pick(
                scan_tasks, SERVERS[step % 4], MY_NAME, suspected, now=float(step)
            )
            b = indexed_policy.pick(
                indexed_tasks, SERVERS[step % 4], MY_NAME, suspected,
                now=float(step), index=index,
            )
            if a.task is None:
                assert b.task is None
                continue
            assert b.task is not None
            assert identity_to_key(a.task.identity) == identity_to_key(b.task.identity)
            index.note(b.task)
        assert scan_policy.assignments == indexed_policy.assignments
        assert scan_policy.dedup_holds == indexed_policy.dedup_holds


class _CountingTable(dict):
    """A task table that counts how it is traversed (the O(dirty) shim)."""

    def __init__(self, *args):
        super().__init__(*args)
        self.items_calls = 0
        self.getitem_calls = 0

    def items(self):
        self.items_calls += 1
        return super().items()

    def __getitem__(self, key):
        self.getitem_calls += 1
        return super().__getitem__(key)


class TestDeltaBuild:
    def _table(self, n=500) -> _CountingTable:
        table = _CountingTable()
        for counter in range(n):
            record = make_task(counter)
            table[identity_to_key(record.identity)] = record
        return table

    def test_incremental_build_touches_only_dirty_keys(self):
        table = self._table(500)
        dirty = [identity_to_key(make_task(c).identity) for c in (3, 42, 419)]
        table.items_calls = table.getitem_calls = 0
        state = build_state("k0", table, {}, [], only_keys=dirty)
        # Build cost is proportional to the dirty set: three key lookups,
        # zero table walks.
        assert table.items_calls == 0
        assert table.getitem_calls == len(dirty)
        assert [e["call"]["identity"] for e in state.entries] == dirty

    def test_full_build_still_walks_the_table(self):
        table = self._table(20)
        table.items_calls = table.getitem_calls = 0
        state = build_state("k0", table, {}, [])
        assert len(state.entries) == 20
        assert table.items_calls == 1

    def test_dirty_keys_missing_from_table_are_skipped(self):
        table = self._table(5)
        ghost = ("ghost", "s", 999)
        state = build_state(
            "k0", table, {}, [],
            only_keys=[ghost, identity_to_key(make_task(2).identity)],
        )
        assert len(state.entries) == 1

    def test_accumulated_size_matches_entry_walk(self):
        table = self._table(30)
        finished = table[identity_to_key(make_task(4).identity)]
        finished.state = TaskState.FINISHED
        state = build_state("k0", table, {("u", "s"): 7}, [("coordinator", "k1")])
        walked = ReplicaState(
            origin="k0",
            entries=state.entries,
            client_timestamps=state.client_timestamps,
            known_coordinators=state.known_coordinators,
        )
        assert state.entries_bytes is not None
        assert state.size_bytes == walked.size_bytes
        # 29 replayable records carry parameters, the finished one does not.
        assert state.entries_bytes == 30 * TASK_DESCRIPTION_BYTES + 29 * 100

    def test_entry_cache_reused_until_transition(self):
        tasks: dict[tuple, TaskRecord] = {}
        record = make_task(1)
        key = identity_to_key(record.identity)
        tasks[key] = record
        index = TaskIndex(tasks)
        entry_a, bytes_a = index.replica_entry(key, record)
        entry_b, _ = index.replica_entry(key, record)
        assert entry_a is entry_b  # served from the cache
        assert bytes_a == TASK_DESCRIPTION_BYTES + record.call.params_bytes
        record.state = TaskState.FINISHED
        index.note(record, key)
        entry_c, bytes_c = index.replica_entry(key, record)
        assert entry_c is not entry_a
        assert entry_c["state"] == TaskState.FINISHED.value
        assert bytes_c == TASK_DESCRIPTION_BYTES  # finished: no parameters

    def test_cached_entries_flow_through_build_state(self):
        tasks: dict[tuple, TaskRecord] = {}
        for counter in range(4):
            record = make_task(counter)
            tasks[identity_to_key(record.identity)] = record
        index = TaskIndex(tasks)
        keys = list(tasks)
        first = build_state("k0", tasks, {}, [], only_keys=keys,
                            entry_for=index.replica_entry)
        second = build_state("k0", tasks, {}, [], only_keys=keys,
                             entry_for=index.replica_entry)
        assert [id(e) for e in first.entries] == [id(e) for e in second.entries]
        assert first.size_bytes == second.size_bytes

    def test_fresh_payload_skips_entry_copies_and_receiver_copies_back(self):
        tasks: dict[tuple, TaskRecord] = {}
        record = make_task(1)
        tasks[identity_to_key(record.identity)] = record
        state = build_state("k0", tasks, {}, [])
        assert state.fresh
        payload = state.to_payload()
        assert payload["entries"][0] is state.entries[0]  # no re-copy
        received = ReplicaState.from_payload(payload)
        assert received.entries[0] is not state.entries[0]  # receiver copies
        assert not received.fresh
        assert received.entries[0] == state.entries[0]

    def test_hand_assembled_state_still_copies_on_payload(self):
        entry = make_task(1).to_replica_entry()
        state = ReplicaState(origin="k0", entries=[entry])
        payload = state.to_payload()
        assert payload["entries"][0] is not entry
        assert payload["entries"][0] == entry


class TestScenarioParallelism:
    def test_fig7_rows_identical_across_jobs(self):
        from repro.scenarios import load_all, run_scenario

        load_all()
        sequential = run_scenario("fig7", scale="tiny", jobs=1)
        parallel = run_scenario("fig7", scale="tiny", jobs=4)
        assert sequential.rows == parallel.rows
