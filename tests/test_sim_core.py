"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    ProcessKilled,
    SimulationError,
    Timeout,
    wait_any,
)
from repro.sim.store import FilterStore, PriorityStore, Store, StoreClosed


class TestEvents:
    def test_event_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_timeout_fires_at_delay(self, env):
        timeout = env.timeout(5.0, value="done")
        env.run()
        assert timeout.processed
        assert timeout.value == "done"
        assert env.now == 5.0


class TestProcesses:
    def test_process_advances_time(self, env):
        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 3.0

    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return "result"

        process = env.process(proc())
        env.run()
        assert process.value == "result"

    def test_process_is_waitable(self, env):
        def child():
            yield env.timeout(2.0)
            return 7

        def parent():
            value = yield env.process(child())
            return value * 2

        process = env.process(parent())
        env.run()
        assert process.value == 14

    def test_yield_non_event_raises_inside_process(self, env):
        def proc():
            yield 42  # type: ignore[misc]

        process = env.process(proc())
        with pytest.raises(SimulationError):
            env.run()
        assert not process.is_alive

    def test_interrupt_delivers_cause(self, env):
        observed = {}

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                observed["cause"] = interrupt.cause
                return "interrupted"

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt(cause="boom")

        victim_process = env.process(victim())
        env.process(attacker(victim_process))
        env.run()
        assert observed["cause"] == "boom"
        assert victim_process.value == "interrupted"

    def test_kill_silences_process(self, env):
        def victim():
            yield env.timeout(100.0)
            return "never"

        process = env.process(victim())
        env.run(until=1.0)
        process.kill("crash")
        env.run()
        assert not process.is_alive
        assert process.value is None

    def test_kill_after_termination_is_noop(self, env):
        def quick():
            yield env.timeout(1.0)

        process = env.process(quick())
        env.run()
        process.kill()
        env.run()
        assert not process.is_alive

    def test_process_failure_propagates_to_run(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("bad")

        env.process(failing())
        with pytest.raises(ValueError):
            env.run()

    def test_waiting_on_failing_process_reraises_in_parent(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("inner")

        def parent():
            try:
                yield env.process(failing())
            except ValueError:
                return "caught"

        process = env.process(parent())
        env.run()
        assert process.value == "caught"

    def test_processkilled_escaping_generator_is_silenced(self, env):
        def stubborn():
            while True:
                try:
                    yield env.timeout(10.0)
                except ProcessKilled:
                    raise

        process = env.process(stubborn())
        env.run(until=5.0)
        process.kill()
        env.run()
        assert not process.is_alive


class TestConditions:
    def test_any_of_fires_on_first(self, env):
        def proc():
            first = env.timeout(1.0, value="fast")
            second = env.timeout(5.0, value="slow")
            yield env.any_of([first, second])
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 1.0

    def test_all_of_waits_for_every_event(self, env):
        def proc():
            events = [env.timeout(t) for t in (1.0, 2.0, 3.0)]
            yield env.all_of(events)
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 3.0

    def test_empty_condition_triggers_immediately(self, env):
        condition = AllOf(env, [])
        assert condition.triggered

    def test_anyof_with_already_processed_event(self, env):
        timeout = env.timeout(1.0)
        env.run()

        def proc():
            yield AnyOf(env, [timeout, env.timeout(10.0)])
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 1.0


class TestEnvironment:
    def test_run_until_time_advances_clock(self, env):
        env.timeout(100.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_on_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_run_until_event_returns_its_value(self, env):
        def proc():
            yield env.timeout(2.0)
            return "value"

        process = env.process(proc())
        assert env.run(until=process) == "value"

    def test_fifo_tie_break_for_simultaneous_events(self, env):
        order = []

        def maker(tag):
            def proc():
                yield env.timeout(1.0)
                order.append(tag)

            return proc

        for tag in ("a", "b", "c"):
            env.process(maker(tag)())
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_idle_counts_events(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.run_until_idle() == 2


class TestCancellation:
    def test_cancelled_timeout_never_resumes_waiter(self, env):
        resumed = []
        timeout = env.timeout(5.0)

        def waiter():
            yield timeout
            resumed.append(env.now)

        env.process(waiter())
        env.run(until=1.0)  # the process is now blocked on the timeout
        assert timeout.cancel()
        env.run()
        assert resumed == []
        assert timeout.cancelled
        assert not timeout.processed
        # The tombstone does not drive the clock to t=5 either.
        assert env.now == 1.0

    def test_cancel_is_one_shot_and_rejects_processed(self, env):
        timeout = env.timeout(1.0)
        assert timeout.cancel()
        assert not timeout.cancel()
        fired = env.timeout(1.0)
        env.run()
        assert fired.processed
        assert not fired.cancel()

    def test_cancel_own_timer_mid_resume_is_rejected(self, env):
        """Cancelling the very timer that resumed us must not tombstone it.

        The timer is already off the heap at that point; a phantom tombstone
        would corrupt the dead-entry accounting.
        """
        observed = {}

        def proc():
            timer = env.timeout(1.0)
            yield timer
            observed["cancel"] = timer.cancel()
            observed["processed"] = timer.processed

        env.process(proc())
        env.run()
        assert observed["cancel"] is False
        assert observed["processed"] is True
        stats = env.queue_stats()
        assert stats["dead_entries"] == 0
        assert stats["live_entries"] == 0

    def test_cancelled_timeouts_do_not_survive_compaction(self, env):
        # Past the wheel horizon (256 s by default): the timers go straight
        # to the heap, where cancels tombstone until the compactor sweeps.
        timers = [env.timeout(300.0 + i) for i in range(200)]
        keep = env.timeout(1.0)
        for timer in timers:
            timer.cancel()
        stats = env.queue_stats()
        assert stats["compactions"] >= 1
        assert stats["live_entries"] == 1
        assert stats["heap_size"] < 200  # the heap actually shrank
        env.run()
        assert keep.processed
        assert env.queue_stats()["heap_size"] == 0

    def test_yielding_a_cancelled_timeout_raises(self, env):
        timeout = env.timeout(5.0)
        timeout.cancel()

        def proc():
            yield timeout

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_cancel_wait_detaches_process_from_event(self, env):
        event = env.event()

        def waiter():
            yield event
            return "resumed"

        process = env.process(waiter())
        env.run(until=1.0)
        assert event.cancel_wait(process)
        assert process.target is None
        event.succeed("late")
        env.run()
        assert process.is_alive  # detached: the late trigger did not resume it

    def test_wait_any_winner_cancels_expiry_timer(self, env):
        def proc():
            reply = env.timeout(1.0, value="reply")
            outcome = yield from wait_any(env, [reply], timeout=30.0)
            return outcome

        process = env.process(proc())
        env.run()
        assert process.value.events
        assert not process.value.expired
        # The losing 30 s retry timer was cancelled: the run ended at t=1.
        assert env.now == 1.0
        assert env.queue_stats()["heap_size"] == 0

    def test_wait_any_losing_timeout_payload_not_reported_fired(self, env):
        def proc():
            slow = env.timeout(10.0, value="slow")
            outcome = yield from env.wait_any([slow], timeout=1.0)
            return outcome

        process = env.process(proc())
        env.run()
        # A Timeout holds its value from construction; the raced-and-lost
        # slow timer must still not be reported as a winner.
        assert process.value.timed_out
        assert process.value.events == {}
        assert env.now == 1.0

    def test_wait_any_timeout_detaches_stale_callback(self, env):
        waiter = env.event()

        def proc():
            outcome = yield from env.wait_any([waiter], timeout=2.0)
            return outcome.timed_out

        process = env.process(proc())
        env.run()
        assert process.value is True
        # The long-lived event carries no stale condition callback.
        assert waiter.callbacks == []

    def test_anyof_detaches_from_losing_events(self, env):
        winner = env.event()
        loser = env.event()
        condition = env.any_of([winner, loser])
        winner.succeed("w")
        env.run()
        assert condition.processed
        assert loser.callbacks == []

    def test_interrupt_while_sleeping_reclaims_timer(self, env):
        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                return "woken"

        def waker(target):
            yield env.timeout(1.0)
            target.interrupt()

        process = env.process(sleeper())
        env.process(waker(process))
        env.run()
        assert process.value == "woken"
        # The abandoned 100 s timer was cancelled along with the wait.
        assert env.now == 1.0


class TestWaiterCleanup:
    def test_kill_while_blocked_on_store_get_purges_waiter(self, env):
        store = Store(env)

        def consumer():
            yield store.get()

        process = env.process(consumer())
        env.run(until=1.0)
        assert len(store._getters) == 1
        process.kill("crash")
        env.run()
        assert not process.is_alive
        assert len(store._getters) == 0
        # A later put is not swallowed by the dead waiter.
        store.put("item")
        assert len(store) == 1

    def test_kill_while_blocked_on_filter_store_purges_predicate(self, env):
        store = FilterStore(env)

        def consumer():
            yield store.get(lambda item: item == "wanted")

        process = env.process(consumer())
        env.run(until=1.0)
        process.kill("crash")
        env.run()
        assert len(store._getters) == 0
        assert store._predicates == {}

    def test_kill_during_wait_any_race_cleans_everything(self, env):
        store = Store(env)

        def racer():
            outcome = yield from env.wait_any([store.get()], timeout=50.0)
            return outcome

        process = env.process(racer())
        env.run(until=1.0)
        process.kill("crash")
        env.run()
        assert not process.is_alive
        assert len(store._getters) == 0  # store waiter purged
        assert env.queue_stats()["heap_size"] == 0  # expiry timer reclaimed
        assert env.now == 1.0

    def test_kill_during_raw_anyof_race_cascades_cleanup(self, env):
        store = Store(env)
        getter_box = {}

        def racer():
            getter_box["getter"] = store.get()
            yield env.any_of([getter_box["getter"], env.timeout(50.0)])

        process = env.process(racer())
        env.run(until=1.0)
        process.kill("crash")
        env.run()
        assert len(store._getters) == 0
        assert getter_box["getter"].callbacks == []
        assert env.queue_stats()["heap_size"] == 0

    def test_store_getter_losing_race_does_not_swallow_item(self, env):
        store = Store(env)

        def racer():
            outcome = yield from env.wait_any([store.get()], timeout=2.0)
            return outcome.timed_out

        process = env.process(racer())
        env.run()
        assert process.value is True
        assert len(store._getters) == 0
        store.put("late")
        assert len(store) == 1  # kept for a live consumer, not the dead race


class TestSchedulerLanes:
    """Ordering guarantees of the three scheduling lanes.

    Urgent (init/interrupt) before normal, FIFO within a tick, and the
    call_at callback lane's cancel tokens honoured by queue_stats() and
    _compact().
    """

    def test_same_tick_fifo_order(self, env):
        order = []
        events = [env.event() for _ in range(3)]

        def waiter(tag, event):
            yield event
            order.append(tag)

        for tag, event in zip("abc", events):
            env.process(waiter(tag, event))

        def trigger():
            yield env.timeout(1.0)
            for event in events:
                event.succeed()

        env.process(trigger())
        env.run()
        assert order == ["a", "b", "c"]

    def test_zero_delay_timeout_stays_off_the_heap(self, env):
        timeout = env.timeout(0.0, value="now")
        stats = env.queue_stats()
        assert stats["heap_size"] == 0
        assert stats["tick_queued"] == 1
        env.run()
        assert timeout.processed
        assert env.now == 0.0

    def test_cancelled_zero_delay_timeout_skipped_at_drain(self, env):
        timeout = env.timeout(0.0)
        keep = env.timeout(0.0, value="keep")
        assert timeout.cancel()
        processed = env.run_until_idle()
        assert processed == 1  # only the live one
        assert keep.processed
        assert not timeout.processed
        assert timeout.cancelled

    def test_urgent_preempts_same_tick_normal(self, env):
        order = []
        event = env.event()

        def victim():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                order.append("interrupt")

        def normal_waiter():
            yield event
            order.append("normal")

        victim_process = env.process(victim())
        env.process(normal_waiter())

        def trigger():
            yield env.timeout(1.0)
            event.succeed()  # same-tick lane, scheduled first...
            victim_process.interrupt()  # ...but urgent still preempts it

        env.process(trigger())
        env.run()
        assert order == ["interrupt", "normal"]

    def test_step_drains_urgent_lane_first(self, env):
        order = []
        event = env.event().succeed()
        event.callbacks.append(lambda _e: order.append("succeed"))

        def proc():
            order.append("init")
            yield env.timeout(1.0)

        env.process(proc())  # Initialize rides the urgent lane
        env.step()
        assert order == ["init"]
        env.step()
        assert order == ["init", "succeed"]

    def test_call_at_fires_in_time_then_fifo_order(self, env):
        calls = []
        env.call_at(2.0, calls.append, "b")
        env.call_at(1.0, calls.append, "a")
        env.call_at(2.0, calls.append, "c")
        env.run()
        assert calls == ["a", "b", "c"]
        assert env.now == 2.0

    def test_call_at_due_now_joins_same_tick_lane(self, env):
        calls = []
        env.call_at(0.0, calls.append, "x")
        assert env.queue_stats()["tick_queued"] == 1
        assert env.queue_stats()["heap_size"] == 0
        env.run()
        assert calls == ["x"]
        assert env.now == 0.0

    def test_callbacks_and_events_share_the_time_order(self, env):
        order = []
        env.timeout(1.0).callbacks.append(lambda _e: order.append("t1"))
        env.call_at(1.0, order.append, "c1")
        env.timeout(1.0).callbacks.append(lambda _e: order.append("t2"))
        env.run()
        assert order == ["t1", "c1", "t2"]

    def test_call_at_cancel_token_is_one_shot(self, env):
        handle = env.call_at_cancellable(5.0, lambda _arg: None)
        assert handle.pending
        assert handle.cancel()
        assert not handle.cancel()
        assert handle.cancelled
        env.run()
        assert env.now == 0.0  # the tombstone does not drive the clock

    def test_cancelled_call_never_fires_and_leaves_no_residue(self, env):
        calls = []
        handle = env.call_at_cancellable(1.0, calls.append, "x")
        handle.cancel()
        # Wheel-staged entries are swap-removed at cancel time: no tombstone.
        assert env.queue_stats()["dead_entries"] == 0
        assert env.queue_stats()["live_entries"] == 0
        env.run()
        assert calls == []

    def test_fired_call_handle_rejects_cancel(self, env):
        calls = []
        handle = env.call_at_cancellable(1.0, calls.append, "x")
        env.run()
        assert calls == ["x"]
        assert not handle.pending
        assert not handle.cancel()
        assert env.queue_stats()["dead_entries"] == 0

    def test_cancelled_call_tokens_dropped_by_compaction(self, env):
        # Past the wheel horizon, so the cancels tombstone the heap.
        handles = [
            env.call_at_cancellable(300.0 + i, lambda _arg: None) for i in range(200)
        ]
        keep = []
        env.call_at_cancellable(1.0, keep.append, "kept")
        for handle in handles:
            assert handle.cancel()
        stats = env.queue_stats()
        assert stats["compactions"] >= 1
        assert stats["live_entries"] == 1
        assert stats["heap_size"] < 200  # the heap actually shrank
        env.run()
        assert keep == ["kept"]
        assert env.queue_stats()["heap_size"] == 0


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")

        def proc():
            item = yield store.get()
            return item

        process = env.process(proc())
        env.run()
        assert process.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter():
            item = yield store.get()
            return (env.now, item)

        def putter():
            yield env.timeout(3.0)
            store.put("late")

        get_process = env.process(getter())
        env.process(putter())
        env.run()
        assert get_process.value == (3.0, "late")

    def test_fifo_order(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def proc():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(proc())
        env.run()
        assert got == [1, 2, 3]

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("a")
        assert store.try_get() == "a"

    def test_capacity_rejects_extra_items(self, env):
        store = Store(env, capacity=1)
        ok = store.put("one")
        full = store.put("two")
        assert ok.ok
        assert not full.ok
        assert len(store) == 1

    def test_clear_drops_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.clear() == 2
        assert len(store) == 0

    def test_close_fails_pending_getters(self, env):
        store = Store(env)

        def proc():
            try:
                yield store.get()
            except StoreClosed:
                return "closed"

        process = env.process(proc())
        env.run(until=1.0)
        store.close()
        env.run()
        assert process.value == "closed"

    def test_reopen_accepts_puts_again(self, env):
        store = Store(env)
        store.close()
        assert not store.put("x").ok
        store.reopen()
        assert store.put("x").ok

    def test_filter_store_selects_matching_item(self, env):
        store = FilterStore(env)
        store.put({"kind": "a"})
        store.put({"kind": "b"})

        def proc():
            item = yield store.get(lambda i: i["kind"] == "b")
            return item

        process = env.process(proc())
        env.run()
        assert process.value == {"kind": "b"}

    def test_priority_store_orders_by_priority(self, env):
        store = PriorityStore(env)
        store.put("low", priority=10)
        store.put("high", priority=1)
        got = []

        def proc():
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        env.process(proc())
        env.run()
        assert got == ["high", "low"]


class TestTimerWheel:
    """The hashed timer-wheel lane: ordering parity, cancels, periodics."""

    def _fire_order(self, env):
        """Schedule an identical mixed batch and return its firing order."""
        fired = []
        # Same-timestamp collisions across every producer kind: Timeout
        # events, bare call_at callbacks and cancellable handles all landing
        # at t=2.0, plus entries past the default 256 s horizon (heap from
        # the start in a wheel environment, ordinary pushes without one).
        def waiter(label, delay):
            yield env.timeout(delay)
            fired.append((env.now, label))

        env.process(waiter("timeout-a", 2.0))
        env.call_at(2.0, lambda label: fired.append((env.now, label)), "call-b")
        env.process(waiter("timeout-c", 2.0))
        env.call_at_cancellable(
            2.0, lambda label: fired.append((env.now, label)), "handle-d"
        )
        env.call_at(500.0, lambda label: fired.append((env.now, label)), "far-e")
        env.process(waiter("far-f", 500.0))
        env.call_at(2.0, lambda label: fired.append((env.now, label)), "call-g")
        env.run()
        return fired

    def test_wheel_and_heap_fire_in_identical_order(self):
        with_wheel = self._fire_order(Environment())
        heap_only = self._fire_order(Environment(wheel_slots=0))
        assert with_wheel == heap_only
        assert [when for when, _ in with_wheel] == [2.0] * 5 + [500.0] * 2

    def test_future_timers_stage_on_the_wheel_not_the_heap(self, env):
        handles = [env.call_at_cancellable(10.0 + i, lambda _a: None) for i in range(5)]
        stats = env.queue_stats()
        assert stats["wheel_entries"] == 5
        assert stats["heap_size"] == 0
        for handle in handles:
            handle.cancel()

    def test_overflow_past_horizon_cascades_to_heap_and_fires_on_time(self):
        env = Environment(wheel_granularity=1.0, wheel_slots=4)
        fired = []
        env.call_at(10.0, lambda _a: fired.append(env.now), None)
        stats = env.queue_stats()
        assert stats["wheel_overflows"] == 1
        assert stats["heap_size"] == 1
        assert stats["wheel_entries"] == 0
        env.run()
        assert fired == [10.0]

    def test_cancel_before_flush_never_fires(self, env):
        fired = []
        handle = env.call_at_cancellable(5.0, fired.append, "x")
        assert env.queue_stats()["wheel_entries"] == 1
        assert handle.cancel()
        # A wheel cancel swap-removes the entry on the spot: no tombstone.
        stats = env.queue_stats()
        assert stats["wheel_entries"] == 0
        assert stats["dead_entries"] == 0
        env.run()
        assert fired == []

    def test_cancel_after_flush_never_fires(self, env):
        fired = []
        handle = env.call_at_cancellable(5.5, fired.append, "late")

        def canceller():
            yield env.timeout(5.2)
            # The 5.5 entry's window has matured into the heap by now.
            assert env.queue_stats()["wheel_entries"] == 0
            assert handle.cancel()

        env.process(canceller())
        env.run()
        assert fired == []
        assert env.now == 5.2

    def test_cancelled_wheel_timeout_reclaimed_without_firing(self, env):
        # A Timeout event staged on the wheel honours cancel the same way.
        timeout = env.timeout(7.0)
        assert env.queue_stats()["wheel_entries"] == 1
        assert timeout.cancel()
        env.run()
        assert env.now == 0.0

    def test_kill_while_sleeping_reclaims_wheel_entry(self, env):
        # Crash semantics: killing a process abandons its sleep timer, and
        # the wheel tombstone must be accounted (and eventually reclaimed)
        # exactly like a heap tombstone.
        def sleeper():
            yield env.timeout(100.0)

        def killer(target):
            yield env.timeout(1.0)
            # The nearer live timer kept the heap non-empty, so the 100 s
            # sleep is still staged on the wheel when the crash lands.
            assert env.queue_stats()["wheel_entries"] == 1
            target.kill("node-crash")

        process = env.process(sleeper())
        env.process(killer(process))
        env.run()
        assert not process.is_alive
        assert env.now == 1.0  # the abandoned 100 s timer never drove the clock
        stats = env.queue_stats()
        assert stats["wheel_entries"] == 0 and stats["dead_entries"] == 0

    def test_call_periodic_beats_on_cadence_and_cancels_inline(self, env):
        beats = []
        handle = env.call_periodic(2.0, lambda _a: beats.append(env.now), None)

        def stop_after(n):
            while True:
                yield env.timeout(0.5)
                if handle.fired >= n:
                    handle.cancel()
                    return

        env.process(stop_after(3))
        env.run()
        assert beats == [2.0, 4.0, 6.0]
        assert handle.cancelled and not handle.pending

    def test_call_periodic_first_delay_offsets_the_cadence(self, env):
        beats = []
        handle = env.call_periodic(
            5.0, lambda _a: beats.append(env.now), None, first_delay=0.5
        )
        env.run(until=11.0)
        handle.cancel()
        assert beats == [0.5, 5.5, 10.5]

    def test_call_periodic_cancel_from_inside_fn_stops_rearming(self, env):
        beats = []

        def beat(_arg):
            beats.append(env.now)
            handle.cancel()

        handle = env.call_periodic(1.0, beat, None)
        env.run()
        assert beats == [1.0]
        assert env.queue_stats()["dead_entries"] == 0  # nothing tombstoned

    def test_call_periodic_interval_fn_draws_each_gap(self, env):
        gaps = iter([1.0, 2.0, 4.0, 100.0])
        beats = []
        handle = env.call_periodic(
            None, lambda _a: beats.append(env.now), None, interval_fn=lambda: next(gaps)
        )
        env.run(until=8.0)
        handle.cancel()
        assert beats == [1.0, 3.0, 7.0]

    def test_call_periodic_validation(self, env):
        with pytest.raises(SimulationError):
            env.call_periodic(0.0, lambda _a: None)
        with pytest.raises(SimulationError):
            env.call_periodic(-1.0, lambda _a: None)
        with pytest.raises(SimulationError):
            env.call_periodic(None, lambda _a: None)  # no interval_fn either

    def test_periodic_survives_compaction_of_cancelled_neighbours(self, env):
        # A heap compaction must leave the wheel-staged periodic entry in
        # place and on cadence.  The neighbours sit past the wheel horizon
        # (256 slots x 1 s by default), so their cancels tombstone the heap
        # and trigger the compaction path.
        beats = []
        periodic = env.call_periodic(3.0, lambda _a: beats.append(env.now), None)
        handles = [env.call_at_cancellable(500.0, lambda _a: None) for _ in range(300)]
        for handle in handles:
            handle.cancel()
        stats = env.queue_stats()
        assert stats["compactions"] >= 1
        # The sweeps reclaimed (nearly) all tombstones; at most the cancels
        # since the last compaction remain.
        assert stats["dead_entries"] < 50
        assert stats["live_entries"] == 1
        env.run(until=10.0)
        periodic.cancel()
        assert beats == [3.0, 6.0, 9.0]

    def test_wheel_cancel_leaves_no_residue_among_neighbours(self, env):
        # Swap-remove correctness: cancelling entries from a shared slot
        # must not disturb the survivors, whatever the cancel order.
        fired = []
        handles = [
            env.call_at_cancellable(5.0, fired.append, n) for n in range(8)
        ]
        for index in (0, 7, 3, 4):  # head, tail, middle pair
            assert handles[index].cancel()
        stats = env.queue_stats()
        assert stats["wheel_entries"] == 4
        assert stats["dead_entries"] == 0
        env.run()
        assert fired == [1, 2, 5, 6]  # survivors, original schedule order

    def test_queue_stats_report_wheel_occupancy_and_flushes(self, env):
        for delay in (1.5, 2.5, 3.5):
            env.call_at(delay, lambda _a: None, None)
        stats = env.queue_stats()
        assert stats["wheel_entries"] == 3
        assert stats["peak_wheel_size"] >= 3
        env.run()
        stats = env.queue_stats()
        assert stats["wheel_entries"] == 0
        assert stats["wheel_flushes"] >= 1
        assert stats["events_processed"] == 3

    def test_reset_counters_requires_empty_schedule(self, env):
        env.call_at(5.0, lambda _a: None, None)
        with pytest.raises(SimulationError):
            env.reset_counters()
        env.run()
        env.reset_counters()
        # Ordering still FIFO after the reset.
        fired = []
        env.call_at(1.0, fired.append, "first")
        env.call_at(1.0, fired.append, "second")
        env.run()
        assert fired == ["first", "second"]

    def test_wheel_disabled_environment_is_pure_heap(self):
        env = Environment(wheel_slots=0)
        env.call_at(5.0, lambda _a: None, None)
        stats = env.queue_stats()
        assert stats["wheel_slots"] == 0
        assert stats["wheel_entries"] == 0
        assert stats["heap_size"] == 1
        env.run()
        assert env.queue_stats()["events_processed"] == 1

    def test_wheel_configuration_validation(self):
        with pytest.raises(SimulationError):
            Environment(wheel_granularity=0.0)
        with pytest.raises(SimulationError):
            Environment(wheel_slots=-1)
