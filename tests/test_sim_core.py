"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    ProcessKilled,
    SimulationError,
    Timeout,
)
from repro.sim.store import FilterStore, PriorityStore, Store, StoreClosed


class TestEvents:
    def test_event_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_double_trigger_rejected(self, env):
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(SimulationError):
            Timeout(env, -1.0)

    def test_timeout_fires_at_delay(self, env):
        timeout = env.timeout(5.0, value="done")
        env.run()
        assert timeout.processed
        assert timeout.value == "done"
        assert env.now == 5.0


class TestProcesses:
    def test_process_advances_time(self, env):
        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 3.0

    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return "result"

        process = env.process(proc())
        env.run()
        assert process.value == "result"

    def test_process_is_waitable(self, env):
        def child():
            yield env.timeout(2.0)
            return 7

        def parent():
            value = yield env.process(child())
            return value * 2

        process = env.process(parent())
        env.run()
        assert process.value == 14

    def test_yield_non_event_raises_inside_process(self, env):
        def proc():
            yield 42  # type: ignore[misc]

        process = env.process(proc())
        with pytest.raises(SimulationError):
            env.run()
        assert not process.is_alive

    def test_interrupt_delivers_cause(self, env):
        observed = {}

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                observed["cause"] = interrupt.cause
                return "interrupted"

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt(cause="boom")

        victim_process = env.process(victim())
        env.process(attacker(victim_process))
        env.run()
        assert observed["cause"] == "boom"
        assert victim_process.value == "interrupted"

    def test_kill_silences_process(self, env):
        def victim():
            yield env.timeout(100.0)
            return "never"

        process = env.process(victim())
        env.run(until=1.0)
        process.kill("crash")
        env.run()
        assert not process.is_alive
        assert process.value is None

    def test_kill_after_termination_is_noop(self, env):
        def quick():
            yield env.timeout(1.0)

        process = env.process(quick())
        env.run()
        process.kill()
        env.run()
        assert not process.is_alive

    def test_process_failure_propagates_to_run(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("bad")

        env.process(failing())
        with pytest.raises(ValueError):
            env.run()

    def test_waiting_on_failing_process_reraises_in_parent(self, env):
        def failing():
            yield env.timeout(1.0)
            raise ValueError("inner")

        def parent():
            try:
                yield env.process(failing())
            except ValueError:
                return "caught"

        process = env.process(parent())
        env.run()
        assert process.value == "caught"

    def test_processkilled_escaping_generator_is_silenced(self, env):
        def stubborn():
            while True:
                try:
                    yield env.timeout(10.0)
                except ProcessKilled:
                    raise

        process = env.process(stubborn())
        env.run(until=5.0)
        process.kill()
        env.run()
        assert not process.is_alive


class TestConditions:
    def test_any_of_fires_on_first(self, env):
        def proc():
            first = env.timeout(1.0, value="fast")
            second = env.timeout(5.0, value="slow")
            yield env.any_of([first, second])
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 1.0

    def test_all_of_waits_for_every_event(self, env):
        def proc():
            events = [env.timeout(t) for t in (1.0, 2.0, 3.0)]
            yield env.all_of(events)
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 3.0

    def test_empty_condition_triggers_immediately(self, env):
        condition = AllOf(env, [])
        assert condition.triggered

    def test_anyof_with_already_processed_event(self, env):
        timeout = env.timeout(1.0)
        env.run()

        def proc():
            yield AnyOf(env, [timeout, env.timeout(10.0)])
            return env.now

        process = env.process(proc())
        env.run()
        assert process.value == 1.0


class TestEnvironment:
    def test_run_until_time_advances_clock(self, env):
        env.timeout(100.0)
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_raises(self, env):
        env.run(until=5.0)
        with pytest.raises(SimulationError):
            env.run(until=1.0)

    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_on_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_run_until_event_returns_its_value(self, env):
        def proc():
            yield env.timeout(2.0)
            return "value"

        process = env.process(proc())
        assert env.run(until=process) == "value"

    def test_fifo_tie_break_for_simultaneous_events(self, env):
        order = []

        def maker(tag):
            def proc():
                yield env.timeout(1.0)
                order.append(tag)

            return proc

        for tag in ("a", "b", "c"):
            env.process(maker(tag)())
        env.run()
        assert order == ["a", "b", "c"]

    def test_run_until_idle_counts_events(self, env):
        env.timeout(1.0)
        env.timeout(2.0)
        assert env.run_until_idle() == 2


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")

        def proc():
            item = yield store.get()
            return item

        process = env.process(proc())
        env.run()
        assert process.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter():
            item = yield store.get()
            return (env.now, item)

        def putter():
            yield env.timeout(3.0)
            store.put("late")

        get_process = env.process(getter())
        env.process(putter())
        env.run()
        assert get_process.value == (3.0, "late")

    def test_fifo_order(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def proc():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(proc())
        env.run()
        assert got == [1, 2, 3]

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("a")
        assert store.try_get() == "a"

    def test_capacity_rejects_extra_items(self, env):
        store = Store(env, capacity=1)
        ok = store.put("one")
        full = store.put("two")
        assert ok.ok
        assert not full.ok
        assert len(store) == 1

    def test_clear_drops_items(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert store.clear() == 2
        assert len(store) == 0

    def test_close_fails_pending_getters(self, env):
        store = Store(env)

        def proc():
            try:
                yield store.get()
            except StoreClosed:
                return "closed"

        process = env.process(proc())
        env.run(until=1.0)
        store.close()
        env.run()
        assert process.value == "closed"

    def test_reopen_accepts_puts_again(self, env):
        store = Store(env)
        store.close()
        assert not store.put("x").ok
        store.reopen()
        assert store.put("x").ok

    def test_filter_store_selects_matching_item(self, env):
        store = FilterStore(env)
        store.put({"kind": "a"})
        store.put({"kind": "b"})

        def proc():
            item = yield store.get(lambda i: i["kind"] == "b")
            return item

        process = env.process(proc())
        env.run()
        assert process.value == {"kind": "b"}

    def test_priority_store_orders_by_priority(self, env):
        store = PriorityStore(env)
        store.put("low", priority=10)
        store.put("high", priority=1)
        got = []

        def proc():
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        env.process(proc())
        env.run()
        assert got == ["high", "low"]
