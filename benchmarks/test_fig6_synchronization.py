"""Benchmark for Figure 6 — client/coordinator synchronization time."""

from repro.experiments import run_fig6_vs_calls, run_fig6_vs_size
from repro.experiments.common import print_rows


def test_fig6_sync_vs_size(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig6_vs_size(sizes=[1_000, 1_000_000], n_calls=8),
        rounds=1, iterations=1,
    )
    print_rows(rows, title="Figure 6 (left): synchronization time vs data size")
    for row in rows:
        assert row["coordinator_logs"] > row["client_logs"]


def test_fig6_sync_vs_calls(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig6_vs_calls(counts=[8, 64]), rounds=1, iterations=1
    )
    print_rows(rows, title="Figure 6 (right): synchronization time vs number of calls")
    for row in rows:
        assert row["coordinator_logs"] > row["client_logs"]
