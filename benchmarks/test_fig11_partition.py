"""Benchmark for Figure 11 — execution under a suspected partitioned environment."""

from repro.experiments import run_fig11


def test_fig11_partitioned_views(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig11(
            n_tasks=120, servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8}, seed=3
        ),
        rounds=1, iterations=1,
    )
    print("makespan:", result["makespan"], "completed:", result["completed"])
    assert result["progress_condition_held"]
    assert result["completed_under_partition"]
