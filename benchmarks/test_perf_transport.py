"""Transport performance benchmark: the zero-allocation delivery pipeline.

``Network.send`` used to allocate a full ``Timeout`` event plus a closure per
message and pay two stream-registry lookups and three string-keyed counter
increments; deliveries now ride the kernel's bare ``call_at`` callback lane
(one heap tuple per in-flight message, zero event allocation), the loss/delay
streams and monitor counters are pre-resolved handles, and the link model is
resolved once per (source, dest) pair through the route cache.

The scenario exercises exactly that pipeline at grid scale: *n* nodes split
over two sites exchange messages alternating between a **zero-delay**
same-site link (a ``PerfectLinkModel`` with zero latency — deliveries join
the same-tick lane and never touch the heap) and a **nonzero-delay**
cross-site LAN link (deliveries become future heap callbacks).  Every node
runs a receive loop, so each delivery also wakes a blocked mailbox getter —
the full send → route → deliver → resume path.

Running this file writes ``BENCH_transport.json`` at the repository root with
transport events/sec (sends + deliveries per wall second) at 1k, 5k and 10k
nodes; CI diffs it against the committed baseline and fails on a >20%
events/sec regression (see ``benchmarks/check_bench_regression.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.net.latency import CompositeLinkModel, LanLinkModel, PerfectLinkModel
from repro.net.message import Message, MessageType
from repro.net.transport import Network
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.types import Address

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_transport.json"

#: nodes -> messages per node (messages shrink at scale to bound runtime).
SCALES = {1000: 40, 5000: 16, 10000: 10}
#: think time between two sends of one node (keeps traffic interleaved).
SEND_GAP = 0.001
#: payload bytes per message.
MESSAGE_BYTES = 128

#: fan-in workload: servers per coordinator (the grid's natural shape).
FANIN_RATIO = 100
#: fan-in scales: senders -> beats per sender.
FANIN_SCALES = {1000: 40, 5000: 16, 10000: 10}
#: heart-beat period of the fan-in senders (all in phase, so every tick
#: lands FANIN_RATIO same-tick deliveries per coordinator mailbox).
FANIN_BEAT = 1.0
#: best-of runs per scale (same rationale as the kernel benchmark: host
#: scheduling noise only ever slows a run down, so the best of a few
#: interleaved reps is the unbiased estimate of the pipeline's actual cost,
#: and the committed baseline inherits that robustness).
REPS = 3


def _addresses(nodes: int) -> list[Address]:
    return [Address("node", f"n{index:05d}") for index in range(nodes)]


def _build_network(env: Environment, addresses: list[Address]) -> Network:
    half = len(addresses) // 2
    site_of = {
        address: ("east" if index < half else "west")
        for index, address in enumerate(addresses)
    }
    link_model = CompositeLinkModel(
        site_of=site_of,
        # Same-site messages are zero-delay: they exercise the same-tick lane.
        intra_site=PerfectLinkModel(latency=0.0),
        # Cross-site messages pay a jittered LAN delay: future heap callbacks.
        inter_site=LanLinkModel(jitter=0.05),
    )
    return Network(env, link_model=link_model, rng=RandomStreams(7))


def _sender(env: Environment, network: Network, addresses, index: int, messages: int):
    nodes = len(addresses)
    half = nodes // 2
    offset = 0 if index < half else half
    same_site = offset + (index - offset + 1) % half
    cross_site = (index + half) % nodes
    source = addresses[index]
    for round_index in range(messages):
        dest = addresses[same_site if round_index % 2 == 0 else cross_site]
        network.send(
            Message(
                mtype=MessageType.PING,
                source=source,
                dest=dest,
                size_bytes=MESSAGE_BYTES,
            )
        )
        yield env.timeout(SEND_GAP)


def _receiver(endpoint):
    while True:
        yield endpoint.recv()


def _heap_sampler(env: Environment, samples: list[dict]):
    while True:
        yield env.timeout(SEND_GAP)
        samples.append(env.queue_stats())


def _run_scenario(nodes: int, messages: int) -> dict:
    env = Environment()
    addresses = _addresses(nodes)
    network = _build_network(env, addresses)
    endpoints = [network.register(address) for address in addresses]
    for endpoint in endpoints:
        env.process(_receiver(endpoint))
    senders = [
        env.process(_sender(env, network, addresses, index, messages))
        for index in range(nodes)
    ]
    samples: list[dict] = []
    sampler = env.process(_heap_sampler(env, samples))

    start = time.perf_counter()
    # Run until every sender finished, then let the in-flight deliveries land
    # (receivers end up blocked on empty mailboxes, which is unscheduled).
    env.run(until=env.all_of(senders))
    sampler.kill()
    env.run()
    wall = time.perf_counter() - start

    stats = network.stats()
    queue_stats = env.queue_stats()
    sent = int(stats["net.sent"])
    delivered = int(stats["net.delivered"])
    peak_heap = max((s["heap_size"] for s in samples), default=0)

    # Determinism and pipeline invariants: lossless links deliver everything,
    # nothing is left tombstoned, and the heap never held more than the
    # in-flight cross-site messages plus the senders' pacing timers.
    assert sent == nodes * messages, stats
    assert delivered == sent, stats
    assert queue_stats["dead_entries"] == 0, queue_stats
    assert peak_heap < 4 * nodes, (peak_heap, nodes)

    return {
        "nodes": nodes,
        "messages_per_node": messages,
        "wall_seconds": round(wall, 4),
        "messages_sent": sent,
        "messages_delivered": delivered,
        "events_processed": queue_stats["events_processed"],
        "sampled_max_heap_size": peak_heap,
        "useful_events": sent + delivered,
        "events_per_sec": round((sent + delivered) / wall, 1),
    }


def _run_fanin(senders: int, beats: int) -> dict:
    """Heart-beat fan-in: pooled envelopes, batched coordinator wakeups.

    ``senders`` servers beat in phase at every tick toward
    ``senders / FANIN_RATIO`` coordinators over a zero-delay link, so each
    coordinator mailbox receives ``FANIN_RATIO`` same-tick deliveries.  The
    coordinators drain with ``recv_many`` — one resume per tick for the
    whole batch — and release every pooled envelope back to the free list.
    """
    from repro.net.message import MessagePool

    env = Environment()
    network = Network(env, link_model=PerfectLinkModel(latency=0.0))
    # Every sender's envelope is in flight at once each tick, so the free
    # list must hold one bucket entry per sender to serve the next beat.
    pool = MessagePool(max_per_bucket=senders)
    n_coordinators = max(senders // FANIN_RATIO, 1)
    coordinators = [
        network.register(Address("coordinator", f"c{i:04d}"))
        for i in range(n_coordinators)
    ]
    server_addresses = [
        Address("server", f"s{i:05d}") for i in range(senders)
    ]
    for address in server_addresses:
        network.register(address)

    drained = [0]
    resumes = [0]

    def _drain(endpoint):
        while True:
            batch = yield endpoint.recv_many()
            resumes[0] += 1
            drained[0] += len(batch)
            for message in batch:
                message.release()

    for endpoint in coordinators:
        env.process(_drain(endpoint))

    def _beat_all(_arg) -> None:
        for index, source in enumerate(server_addresses):
            network.send(
                pool.acquire(
                    MessageType.SERVER_HEARTBEAT,
                    source,
                    coordinators[index % n_coordinators].address,
                    {"working_on": None},
                    size_bytes=MESSAGE_BYTES,
                )
            )

    env.call_periodic(FANIN_BEAT, _beat_all, None)

    start = time.perf_counter()
    env.run(until=beats * FANIN_BEAT + 0.5)
    wall = time.perf_counter() - start

    stats = network.stats()
    sent = int(stats["net.sent"])
    delivered = int(stats["net.delivered"])
    pool_stats = pool.stats()

    # Lossless zero-delay fan-in: everything sent is delivered, drained in
    # one resume per coordinator per tick, and only the first beat allocates
    # fresh envelopes — every later beat is served from the free list.
    assert sent == senders * beats, stats
    assert delivered == sent, stats
    assert drained[0] == delivered, (drained, stats)
    assert resumes[0] == n_coordinators * beats, (resumes, n_coordinators)
    assert pool_stats["misses"] == senders, pool_stats
    assert pool_stats["dropped"] == 0, pool_stats

    useful = sent + delivered
    return {
        "senders": senders,
        "coordinators": n_coordinators,
        "beats_per_sender": beats,
        "wall_seconds": round(wall, 4),
        "messages_sent": sent,
        "messages_delivered": delivered,
        "receiver_resumes": resumes[0],
        "batch_size_mean": round(delivered / resumes[0], 2),
        "pool_hit_rate": round(pool_stats["hit_rate"], 6),
        "useful_events": useful,
        "events_per_sec": round(useful / wall, 1),
    }


def _pick_best(runs_by_scale: dict[int, list[dict]]) -> dict[str, dict]:
    """Best events/sec row per scale; all observed throughputs recorded."""
    results = {}
    for scale, runs in runs_by_scale.items():
        result = max(runs, key=lambda r: r["events_per_sec"])
        result["events_per_sec_runs"] = [r["events_per_sec"] for r in runs]
        results[str(scale)] = result
    return results


def test_transport_benchmark_writes_bench_json():
    # Reps are interleaved across every scale of BOTH workloads (1k, 5k, 10k
    # point-to-point, then 1k, 5k, 10k fan-in, then the next rep of each)
    # rather than run in per-scale or per-workload blocks: host slow phases
    # last several seconds, so a block design lets one phase sink all of a
    # scale's reps at once — spreading the reps across the full benchmark
    # window keeps at least one rep per scale clear of any single phase.
    scenario_runs: dict[int, list[dict]] = {scale: [] for scale in SCALES}
    fanin_runs: dict[int, list[dict]] = {scale: [] for scale in FANIN_SCALES}
    for _ in range(REPS):
        for nodes, messages in SCALES.items():
            scenario_runs[nodes].append(_run_scenario(nodes, messages))
        for senders, beats in FANIN_SCALES.items():
            fanin_runs[senders].append(_run_fanin(senders, beats))
    scales = _pick_best(scenario_runs)
    fanin = _pick_best(fanin_runs)

    payload = {
        "benchmark": "transport-zero-allocation-delivery",
        "send_gap": SEND_GAP,
        "message_bytes": MESSAGE_BYTES,
        "metric": (
            "events_per_sec = transport events (sends + deliveries) / wall "
            "seconds; every message alternates a zero-delay same-site link "
            "(same-tick lane) and a jittered cross-site LAN link (heap "
            "callback lane); fanin_scales exercise pooled heart-beat "
            "envelopes drained through batched recv_many wakeups"
        ),
        "scales": scales,
        "fanin_scales": fanin,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nBENCH_transport.json: {json.dumps(scales, indent=2)}")
    print(f"fan-in: {json.dumps(fanin, indent=2)}")
