"""Benchmark harness configuration.

Every benchmark regenerates one figure of the paper at a reduced scale (so the
suite stays fast) and prints the series it produced; run the experiment
drivers in ``repro.experiments`` directly with their default parameters for
the full-size campaigns recorded in EXPERIMENTS.md.
"""
