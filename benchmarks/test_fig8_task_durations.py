"""Benchmark for Figure 8 — distribution of Alcatel task durations."""

from repro.experiments import run_fig8
from repro.experiments.common import print_rows


def test_fig8_task_duration_distribution(benchmark):
    result = benchmark.pedantic(lambda: run_fig8(n_tasks=1000, bins=20), rounds=1, iterations=1)
    print_rows(result["histogram"], title="Figure 8: distribution of task durations")
    stats = result["stats"]
    print("stats:", stats)
    assert stats["count"] == 1000
    assert stats["max"] > 4 * stats["median"]  # wide, right-skewed range
