"""Benchmark for Figure 10 — execution with two consecutive coordinator faults."""

from repro.experiments import run_fig10


def test_fig10_two_consecutive_coordinator_faults(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig10(
            n_tasks=120, servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8}, seed=3
        ),
        rounds=1, iterations=1,
    )
    print("makespan:", result["makespan"], "events:", result["events"])
    assert result["tolerated_two_coordinator_faults"]
    labels = [event["label"] for event in result["events"]]
    assert 2 in labels and 8 in labels  # both coordinators were actually killed
