"""Benchmark for Figure 9 — reference Alcatel execution without fault."""

from repro.analysis import plateaux_count
from repro.experiments import run_fig9


def test_fig9_reference_execution(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig9(
            n_tasks=120, servers_per_site={"lille": 8, "wisconsin": 8, "orsay": 8}, seed=3
        ),
        rounds=1, iterations=1,
    )
    print("makespan:", result["makespan"], "completed:", result["completed"])
    print("lille:", [int(v) for v in result["lille_completed"]])
    print("orsay:", [int(v) for v in result["orsay_completed"]])
    assert result["completed"] == result["submitted"] == 120
    # The replica trails the primary by discrete replication rounds (plateaux).
    assert result["replica_mean_lag_tasks"] >= 0
    assert plateaux_count(result["orsay_completed"]) >= 1
