"""Kernel performance benchmark: cancellable waits vs. the pre-PR leaky kernel.

The RPC-V protocol is timeout-driven end to end: one end-to-end RPC races its
reply against a *ladder* of per-tier timers (client submission retry, server
work-request retry, server upload retry, client result wait, coordinator
replication-ack suspicion, ...).  Before timers became cancellable, every won
race abandoned the whole ladder: the dead timers stayed in the event heap
until their (much later) expiry, each firing a stale condition callback when
it finally surfaced.  This benchmark quantifies exactly that difference:

* **cancellable** (the shipped kernel): the winning reply detaches the
  condition from the losers, the abandon cascade tombstones them, and the
  compactor removes the tombstones in bulk — the heap stays at live size;
* **legacy** (a faithful emulation of the pre-PR kernel's ``AnyOf``): the
  condition never detaches, nothing is cancelled, and every abandoned timer
  is eventually popped and processed as garbage.

Both modes run the identical logical workload, so *useful* throughput —
events a leak-free kernel must process per wall-clock second — is directly
comparable: the ratio of the two is the speedup the cancellable kernel buys.

Since the same-tick-lane PR, condition triggers and process init/termination
ride the kernel's same-tick FIFO lane instead of the heap, so the heap traffic
of this workload is timers only (the peak heap numbers reflect that), and the
identical workload also documents its speedup vs the committed PR-1 kernel
(``comparison_1k.speedup_vs_pr1``).

Running this file writes ``BENCH_kernel.json`` at the repository root with
events/sec, peak heap size, and the live-vs-dead heap occupancy at 100, 1k
and 5k nodes; CI diffs it against the committed baseline and fails on a >20%
events/sec regression (see ``benchmarks/check_bench_regression.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.sim.core import AnyOf, Environment, Event, Timeout

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: virtual time until the reply wins each race.
REPLY_DELAY = 0.05
#: one abandoned timer per protocol tier for every end-to-end RPC
#: (submission retry, work-request retry, upload retry, poll period,
#: replication-ack suspicion, client-side result wait).
TIMER_LADDER = (5.0, 5.0, 5.0, 10.0, 30.0, 60.0)
#: nodes -> rounds per node (rounds shrink at the top scale to bound runtime).
SCALES = {100: 100, 1000: 100, 5000: 40}
COMPARISON_NODES = 1000
#: acceptance floor: the cancellable kernel must at least double useful
#: throughput at the 1k-node scenario.
MIN_SPEEDUP = 2.0
#: the committed PR-1 events/sec at the 1k scale (pre same-tick-lane kernel),
#: measured on the same baseline machine that produces the committed
#: BENCH_kernel.json.  The derived speedup_vs_pr1 is documentation of that
#: machine's generational move only — regenerating on different hardware
#: makes it a hardware ratio, not a kernel one (the in-run ``speedup`` field
#: is the machine-independent head-to-head).
PR1_BASELINE_1K_EVENTS_PER_SEC = 99058.5
#: sampling period (virtual seconds) for heap-occupancy snapshots.
SAMPLE_PERIOD = 1.0


def _legacy_any_of(env: Environment, events: list[Event]) -> Event:
    """The pre-PR kernel's AnyOf semantics: subscribe everywhere, never detach.

    Losing events keep the stale ``check`` callback forever; losing timers
    stay in the heap until expiry and are processed as garbage.
    """
    condition = Event(env)

    def check(event: Event) -> None:
        if not condition.triggered:
            condition.succeed(event.value)

    for event in events:
        event.callbacks.append(check)  # type: ignore[union-attr]
    return condition


def _node_cancellable(env: Environment, rounds: int):
    for _ in range(rounds):
        race = [Timeout(env, REPLY_DELAY)]
        race += [Timeout(env, delay) for delay in TIMER_LADDER]
        # The reply wins; AnyOf detaches from the ladder, whose timers are
        # then cancelled through the abandon cascade.
        yield AnyOf(env, race)


def _node_legacy(env: Environment, rounds: int):
    for _ in range(rounds):
        race = [Timeout(env, REPLY_DELAY)]
        race += [Timeout(env, delay) for delay in TIMER_LADDER]
        yield _legacy_any_of(env, race)


def _heap_sampler(env: Environment, samples: list[dict]):
    while True:
        yield Timeout(env, SAMPLE_PERIOD)
        samples.append(env.queue_stats())


def _run_scenario(nodes: int, rounds: int, legacy: bool) -> dict:
    env = Environment()
    node = _node_legacy if legacy else _node_cancellable
    workers = [env.process(node(env, rounds)) for _ in range(nodes)]
    samples: list[dict] = []
    sampler = env.process(_heap_sampler(env, samples))

    start = time.perf_counter()
    # Run until every worker finished, then let the sampler's pending tick
    # (and, in legacy mode, the garbage backlog) drain on the same clock.
    env.run(until=env.all_of(workers))
    sampler.kill()
    env.run()
    wall = time.perf_counter() - start

    end_stats = env.queue_stats()
    max_live = max((s["live_entries"] for s in samples), default=0)
    max_dead = max((s["dead_entries"] for s in samples), default=0)
    max_heap = max((s["heap_size"] for s in samples), default=0)
    return {
        "nodes": nodes,
        "rounds_per_node": rounds,
        "wall_seconds": round(wall, 4),
        "events_processed": end_stats["events_processed"],
        "peak_heap_size": end_stats["peak_heap_size"],
        "compactions": end_stats["compactions"],
        "sampled_max_live_entries": max_live,
        "sampled_max_dead_entries": max_dead,
        "sampled_max_heap_size": max_heap,
        # dead entries relative to live ones while the workload was running:
        # ~0 for the cancellable kernel, >>1 for the leaky one.
        "dead_to_live_ratio": round(max_dead / max_live, 4) if max_live else 0.0,
    }


def _useful_events(nodes: int, rounds: int) -> int:
    """Events a leak-free kernel must process for this workload.

    Per round: the reply timeout plus the condition it triggers.  Per node:
    the initialisation event and the process-termination event.  (The heap
    sampler's ticks are excluded — they are measurement overhead, identical
    in both modes and negligible at these scales.)
    """
    return nodes * (2 * rounds + 2)


def test_kernel_benchmark_writes_bench_json_and_beats_legacy():
    scales = {}
    for nodes, rounds in SCALES.items():
        result = _run_scenario(nodes, rounds, legacy=False)
        useful = _useful_events(nodes, rounds)
        result["useful_events"] = useful
        result["events_per_sec"] = round(useful / result["wall_seconds"], 1)
        scales[str(nodes)] = result

        # Leak-freedom invariants: the heap never grows past a small multiple
        # of the live population, and tombstones never dominate the samples.
        assert result["peak_heap_size"] < 16 * nodes, result
        # Compaction triggers once tombstones reach the live population, so
        # sampled dead can brush against live but never dominate it.
        assert result["dead_to_live_ratio"] < 1.5, result

    # Head-to-head against the pre-PR kernel emulation at the 1k scenario.
    rounds = SCALES[COMPARISON_NODES]
    useful = _useful_events(COMPARISON_NODES, rounds)
    legacy = _run_scenario(COMPARISON_NODES, rounds, legacy=True)
    cancellable = scales[str(COMPARISON_NODES)]
    legacy["useful_events"] = useful
    legacy["events_per_sec"] = round(useful / legacy["wall_seconds"], 1)
    speedup = legacy["wall_seconds"] / cancellable["wall_seconds"]

    payload = {
        "benchmark": "kernel-cancellable-timers",
        "reply_delay": REPLY_DELAY,
        "timer_ladder": list(TIMER_LADDER),
        # single source of truth for the gate's speedup floor
        "min_speedup": MIN_SPEEDUP,
        "metric": (
            "events_per_sec = useful events (reply + condition per round, "
            "init + termination per node) / wall seconds"
        ),
        "scales": scales,
        "comparison_1k": {
            "nodes": COMPARISON_NODES,
            "rounds_per_node": rounds,
            "legacy_events_per_sec": legacy["events_per_sec"],
            "cancellable_events_per_sec": cancellable["events_per_sec"],
            "legacy_peak_heap_size": legacy["peak_heap_size"],
            "cancellable_peak_heap_size": cancellable["peak_heap_size"],
            "speedup": round(speedup, 2),
            # Documentation of the same-tick-lane PR: how far the identical
            # workload moved vs the committed PR-1 kernel numbers.
            "pr1_events_per_sec": PR1_BASELINE_1K_EVENTS_PER_SEC,
            "speedup_vs_pr1": round(
                cancellable["events_per_sec"] / PR1_BASELINE_1K_EVENTS_PER_SEC, 2
            ),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nBENCH_kernel.json: {json.dumps(payload['comparison_1k'], indent=2)}")

    # The legacy heap bloats with the full abandoned-timer backlog; the
    # cancellable heap stays at roughly the live population.
    assert legacy["peak_heap_size"] > 20 * cancellable["peak_heap_size"]
    assert speedup >= MIN_SPEEDUP, (
        f"cancellable kernel only {speedup:.2f}x faster than the legacy "
        f"kernel at {COMPARISON_NODES} nodes (need >= {MIN_SPEEDUP}x)"
    )
