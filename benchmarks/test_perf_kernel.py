"""Kernel performance benchmarks: the four-lane scheduler at grid scale.

Two workloads, written to ``BENCH_kernel.json``:

**Periodic-heavy** (the headline ``scales`` section, flatness-gated in CI):
every node runs the RPC-V cadence pattern — a 1 s heart-beat driven by
``call_periodic`` (re-armed in place on the timer wheel, no per-beat event
allocation) that acquires and releases one pooled protocol envelope per beat
and re-arms a 30 s failure-detector watchdog (``call_at_cancellable`` →
O(1) wheel cancel on the next beat).  This is the load shape that used to
collapse with node count: per-beat heap pushes at O(log n) plus a fresh
``Message`` per heart-beat.  With the wheel lane and envelope pooling the
per-event cost is scale-independent, and CI enforces it: 10k-node events/sec
must stay ≥ 90% of the 1k-node number (``check_bench_regression.py
--flatness``).

**Cancel-heavy ladder** (the ``ladder_scales`` and ``comparison_1k``
sections): the pre-existing reply-vs-timer-ladder race workload, kept for
continuity with earlier baselines.  ``comparison_1k`` still runs the
faithful pre-cancellation kernel emulation — now with ``wheel_slots=0``,
because the legacy kernel predates the wheel lane and its signature heap
bloat only reproduces on a heap-only schedule.

Throughput is measured with the cycle collector off (the kernel's abandon
cascade keeps the event graph acyclic, so gen-0 rescans of live timers are
pure measurement noise); the committed numbers say so here so regenerated
baselines compare like with like.  CI diffs the json against the committed
baseline and fails on a >20% events/sec drop at any scale, a legacy speedup
below ``min_speedup``, or a periodic flatness ratio below 0.9.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

from repro.net.message import MessagePool, MessageType
from repro.sim.core import AnyOf, Environment, Event, Timeout
from repro.types import Address

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

# --------------------------------------------------------------------------
# Periodic-heavy workload (headline): heart-beats + detector re-arms.
# --------------------------------------------------------------------------

#: nodes -> total beats (sim seconds shrink with scale to bound runtime).
PERIODIC_SCALES = {1000: 500_000, 5000: 500_000, 10000: 500_000}
#: heart-beat cadence per node (the protocol's detection-period order).
BEAT_PERIOD = 1.0
#: failure-detector suspicion horizon re-armed on every beat.
WATCHDOG_DELAY = 30.0
#: wheel geometry for the periodic scenario: fine-grained windows keep each
#: flush batch (and therefore the heap) small; 4096 slots cover 204.8 s,
#: comfortably past the 30 s watchdog horizon (overflows recorded anyway).
PERIODIC_WHEEL = {"wheel_granularity": 0.05, "wheel_slots": 4096}
#: CI floor for 10k-node ev/s as a fraction of 1k-node ev/s.
FLATNESS_FLOOR = 0.9
#: best-of runs per periodic scale: the flatness gate compares two absolute
#: throughputs, so scheduler noise on a loaded runner must not masquerade as
#: a scaling regression (noise only ever slows a run down — taking the best
#: of a few runs is the unbiased estimate of the kernel's actual cost).
PERIODIC_REPS = 3

# --------------------------------------------------------------------------
# Cancel-heavy ladder workload (continuity with pre-wheel baselines).
# --------------------------------------------------------------------------

#: virtual time until the reply wins each race.
REPLY_DELAY = 0.05
#: one abandoned timer per protocol tier for every end-to-end RPC
#: (submission retry, work-request retry, upload retry, poll period,
#: replication-ack suspicion, client-side result wait).
TIMER_LADDER = (5.0, 5.0, 5.0, 10.0, 30.0, 60.0)
#: nodes -> rounds per node (rounds shrink at the top scales to bound runtime).
LADDER_SCALES = {100: 100, 1000: 100, 5000: 40, 10000: 20}
COMPARISON_NODES = 1000
#: acceptance floor: the cancellable kernel must at least double useful
#: throughput at the 1k-node scenario.
MIN_SPEEDUP = 2.0
#: sampling period (virtual seconds) for schedule-occupancy snapshots.
SAMPLE_PERIOD = 1.0


def _no_gc():
    """Context: cycle collector off for the timed region (see module doc)."""
    class _NoGC:
        def __enter__(self):
            self.was_enabled = gc.isenabled()
            gc.disable()

        def __exit__(self, *exc):
            if self.was_enabled:
                gc.enable()
            return False

    return _NoGC()


# -- periodic-heavy ---------------------------------------------------------


def _run_periodic(nodes: int, beats_target: int) -> dict:
    env = Environment(**PERIODIC_WHEEL)
    pool = MessagePool()
    address = Address("bench", 0)
    beats = [0]
    watchdogs: list = [None] * nodes

    def _suspect(_arg) -> None:  # pragma: no cover - never fires in-bench
        raise AssertionError("watchdog fired while beats kept arriving")

    def _make_beat(index: int):
        def _beat(_arg) -> None:
            # One pooled protocol envelope per beat (acquire -> release is
            # the emit -> consume path of heart-beat traffic).
            message = pool.acquire(
                MessageType.SERVER_HEARTBEAT, address, address,
                {"working_on": None},
            )
            beats[0] += 1
            handle = watchdogs[index]
            if handle is not None:
                handle.cancel()
            watchdogs[index] = env.call_at_cancellable(
                env.now + WATCHDOG_DELAY, _suspect, None
            )
            message.release()

        return _beat

    for index in range(nodes):
        env.call_periodic(
            BEAT_PERIOD,
            _make_beat(index),
            None,
            # Spread first beats uniformly across one period, like the
            # emitters' jittered start.
            first_delay=BEAT_PERIOD * (index + 1) / nodes,
        )

    sim_seconds = beats_target / nodes * BEAT_PERIOD
    with _no_gc():
        start = time.perf_counter()
        env.run(until=sim_seconds)
        wall = time.perf_counter() - start

    stats = env.queue_stats()
    pool_stats = pool.stats()
    # Useful events: every beat and every watchdog re-arm it performs.
    useful = 2 * beats[0]
    return {
        "nodes": nodes,
        "beats": beats[0],
        "wall_seconds": round(wall, 4),
        "useful_events": useful,
        "events_per_sec": round(useful / wall, 1),
        "events_processed": stats["events_processed"],
        "wheel_entries_end": stats["wheel_entries"],
        "peak_wheel_size": stats["peak_wheel_size"],
        "wheel_flushes": stats["wheel_flushes"],
        "wheel_overflows": stats["wheel_overflows"],
        "peak_heap_size": stats["peak_heap_size"],
        "compactions": stats["compactions"],
        "pool_hit_rate": round(pool_stats["hit_rate"], 6),
        "pool_pooled": pool_stats["pooled"],
    }


# -- cancel-heavy ladder ----------------------------------------------------


def _legacy_any_of(env: Environment, events: list[Event]) -> Event:
    """The pre-PR kernel's AnyOf semantics: subscribe everywhere, never detach.

    Losing events keep the stale ``check`` callback forever; losing timers
    stay in the heap until expiry and are processed as garbage.
    """
    condition = Event(env)

    def check(event: Event) -> None:
        if not condition.triggered:
            condition.succeed(event.value)

    for event in events:
        event.callbacks.append(check)  # type: ignore[union-attr]
    return condition


def _node_cancellable(env: Environment, rounds: int):
    for _ in range(rounds):
        race = [Timeout(env, REPLY_DELAY)]
        race += [Timeout(env, delay) for delay in TIMER_LADDER]
        # The reply wins; AnyOf detaches from the ladder, whose timers are
        # then cancelled through the abandon cascade.
        yield AnyOf(env, race)


def _node_legacy(env: Environment, rounds: int):
    for _ in range(rounds):
        race = [Timeout(env, REPLY_DELAY)]
        race += [Timeout(env, delay) for delay in TIMER_LADDER]
        yield _legacy_any_of(env, race)


def _heap_sampler(env: Environment, samples: list[dict]):
    while True:
        yield Timeout(env, SAMPLE_PERIOD)
        samples.append(env.queue_stats())


def _run_ladder(nodes: int, rounds: int, legacy: bool) -> dict:
    # The legacy emulation reproduces the pre-wheel kernel, whose only lane
    # for future timers was the heap: run it with the wheel disabled so its
    # signature pathology (the abandoned-timer heap bloat) is preserved.
    env = Environment(wheel_slots=0) if legacy else Environment()
    node = _node_legacy if legacy else _node_cancellable
    workers = [env.process(node(env, rounds)) for _ in range(nodes)]
    samples: list[dict] = []
    sampler = env.process(_heap_sampler(env, samples))

    with _no_gc():
        start = time.perf_counter()
        # Run until every worker finished, then let the sampler's pending tick
        # (and, in legacy mode, the garbage backlog) drain on the same clock.
        env.run(until=env.all_of(workers))
        sampler.kill()
        env.run()
        wall = time.perf_counter() - start

    end_stats = env.queue_stats()
    max_live = max((s["live_entries"] for s in samples), default=0)
    max_dead = max((s["dead_entries"] for s in samples), default=0)
    max_heap = max((s["heap_size"] for s in samples), default=0)
    return {
        "nodes": nodes,
        "rounds_per_node": rounds,
        "wall_seconds": round(wall, 4),
        "events_processed": end_stats["events_processed"],
        "peak_heap_size": end_stats["peak_heap_size"],
        "peak_wheel_size": end_stats["peak_wheel_size"],
        "wheel_flushes": end_stats["wheel_flushes"],
        "wheel_overflows": end_stats["wheel_overflows"],
        "compactions": end_stats["compactions"],
        "sampled_max_live_entries": max_live,
        "sampled_max_dead_entries": max_dead,
        "sampled_max_heap_size": max_heap,
        # dead entries relative to live ones while the workload was running:
        # ~0 for the cancellable kernel, >>1 for the leaky one.
        "dead_to_live_ratio": round(max_dead / max_live, 4) if max_live else 0.0,
    }


def _useful_ladder_events(nodes: int, rounds: int) -> int:
    """Events a leak-free kernel must process for the ladder workload.

    Per round: the reply timeout plus the condition it triggers.  Per node:
    the initialisation event and the process-termination event.  (The heap
    sampler's ticks are excluded — they are measurement overhead, identical
    in both modes and negligible at these scales.)
    """
    return nodes * (2 * rounds + 2)


def test_kernel_benchmark_writes_bench_json_and_beats_legacy():
    # ---- periodic-heavy scales (flatness-gated) --------------------------
    # Reps are interleaved across scales (1k, 5k, 10k, 1k, ...) rather than
    # run in per-scale blocks: host-scheduling slow phases last seconds, so
    # a block design would let one phase slow a single scale's whole block
    # and masquerade as a scaling trend in the flatness ratio.
    runs_by_scale: dict[int, list[dict]] = {nodes: [] for nodes in PERIODIC_SCALES}
    for _ in range(PERIODIC_REPS):
        for nodes, beats_target in PERIODIC_SCALES.items():
            runs_by_scale[nodes].append(_run_periodic(nodes, beats_target))
    periodic = {}
    for nodes, runs in runs_by_scale.items():
        result = max(runs, key=lambda run: run["events_per_sec"])
        result["events_per_sec_runs"] = [run["events_per_sec"] for run in runs]
        periodic[str(nodes)] = result
        # The wheel must absorb the whole cadence: nothing past the horizon,
        # and the pool must be serving (almost) every beat from the free list.
        assert result["wheel_overflows"] == 0, result
        assert result["pool_hit_rate"] > 0.99, result

    # ---- cancel-heavy ladder scales --------------------------------------
    ladder = {}
    for nodes, rounds in LADDER_SCALES.items():
        result = _run_ladder(nodes, rounds, legacy=False)
        useful = _useful_ladder_events(nodes, rounds)
        result["useful_events"] = useful
        result["events_per_sec"] = round(useful / result["wall_seconds"], 1)
        ladder[str(nodes)] = result

        # Leak-freedom invariants: the schedule never grows past a small
        # multiple of the live population, and tombstones never dominate.
        assert result["peak_heap_size"] < 16 * nodes, result
        # Compaction triggers once tombstones reach the live population, so
        # sampled dead can brush against live but never dominate it.
        assert result["dead_to_live_ratio"] < 1.5, result

    # ---- head-to-head against the pre-PR kernel at the 1k scenario -------
    # Best-of interleaved pairs, like the periodic scales: the speedup is a
    # ratio of two absolute walls, so one slow host phase on either side
    # would otherwise swing the (machine-independent) floor check.
    rounds = LADDER_SCALES[COMPARISON_NODES]
    useful = _useful_ladder_events(COMPARISON_NODES, rounds)
    cancellable = ladder[str(COMPARISON_NODES)]
    best_cancellable_wall = cancellable["wall_seconds"]
    legacy = None
    for _ in range(PERIODIC_REPS):
        run = _run_ladder(COMPARISON_NODES, rounds, legacy=True)
        if legacy is None or run["wall_seconds"] < legacy["wall_seconds"]:
            legacy = run
        rerun = _run_ladder(COMPARISON_NODES, rounds, legacy=False)
        best_cancellable_wall = min(best_cancellable_wall, rerun["wall_seconds"])
    legacy["useful_events"] = useful
    legacy["events_per_sec"] = round(useful / legacy["wall_seconds"], 1)
    speedup = legacy["wall_seconds"] / best_cancellable_wall

    payload = {
        "benchmark": "kernel-four-lane-scheduler",
        "metric": (
            "scales: events_per_sec = periodic useful events (one beat + one "
            "watchdog re-arm per heart-beat) / wall seconds; ladder_scales: "
            "useful events (reply + condition per round, init + termination "
            "per node) / wall seconds"
        ),
        "beat_period": BEAT_PERIOD,
        "watchdog_delay": WATCHDOG_DELAY,
        "periodic_wheel": PERIODIC_WHEEL,
        "flatness_floor": FLATNESS_FLOOR,
        "reply_delay": REPLY_DELAY,
        "timer_ladder": list(TIMER_LADDER),
        # single source of truth for the gate's speedup floor
        "min_speedup": MIN_SPEEDUP,
        "scales": periodic,
        "ladder_scales": ladder,
        "comparison_1k": {
            "nodes": COMPARISON_NODES,
            "rounds_per_node": rounds,
            "legacy_events_per_sec": legacy["events_per_sec"],
            "cancellable_events_per_sec": cancellable["events_per_sec"],
            "legacy_peak_heap_size": legacy["peak_heap_size"],
            "cancellable_peak_heap_size": cancellable["peak_heap_size"],
            "speedup": round(speedup, 2),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    summary = {
        scale: row["events_per_sec"] for scale, row in periodic.items()
    }
    print(f"\nBENCH_kernel.json periodic ev/s: {summary}")
    print(f"comparison_1k: {json.dumps(payload['comparison_1k'], indent=2)}")

    # The legacy heap bloats with the full abandoned-timer backlog; the
    # cancellable schedule stays at roughly the live population.
    assert legacy["peak_heap_size"] > 20 * cancellable["peak_heap_size"]
    assert speedup >= MIN_SPEEDUP, (
        f"cancellable kernel only {speedup:.2f}x faster than the legacy "
        f"kernel at {COMPARISON_NODES} nodes (need >= {MIN_SPEEDUP}x)"
    )
