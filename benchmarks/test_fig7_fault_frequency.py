"""Benchmark for Figure 7 — execution time vs fault frequency."""

from repro.experiments import run_fig7
from repro.experiments.common import print_rows


def test_fig7_fault_frequency(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig7(
            frequencies=[0.0, 4.0, 10.0],
            seeds=(7,),
            n_calls=32,
            exec_time=5.0,
            n_servers=8,
            n_coordinators=4,
            horizon=4000.0,
        ),
        rounds=1, iterations=1,
    )
    print_rows(rows, title="Figure 7: benchmark execution time vs fault frequency")
    baseline = rows[0]
    worst = rows[-1]
    assert worst["faulty_servers_seconds"] > baseline["faulty_servers_seconds"]
    assert worst["faulty_coordinators_seconds"] >= baseline["faulty_coordinators_seconds"]
    assert all(r["faulty_servers_completed"] and r["faulty_coordinators_completed"] for r in rows)
