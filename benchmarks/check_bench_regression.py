#!/usr/bin/env python
"""Gate benchmark regressions against a committed baseline.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json FRESH.json \
        [--max-regression 0.20]

Compares the per-scale ``events_per_sec`` of a freshly produced benchmark
file (``BENCH_kernel.json`` from ``benchmarks/test_perf_kernel.py`` or
``BENCH_transport.json`` from ``benchmarks/test_perf_transport.py``) against
the committed baseline and exits non-zero when any scale regressed by more
than ``--max-regression`` (a fraction; default 20%).  Every per-scale group
in the baseline is gated: ``scales`` plus any auxiliary ``*_scales`` table
(the transport benchmark's ``fanin_scales``, the kernel benchmark's
``ladder_scales``), so regressions in secondary tables cannot land
silently.  Speed-ups and small noise are reported but never fail the gate.  When the benchmark records a
machine-independent head-to-head ratio (the kernel benchmark's 1k
``speedup`` and its ``min_speedup`` floor), that floor is checked too;
benchmarks without one (the transport file) are gated on the per-scale
events/sec alone.  Any ``comparison*`` group is gated the same way (the
protocol benchmark's ``comparison_100k`` indexed-vs-scan head-to-head).

``--flatness LOW:HIGH:RATIO`` adds a scale-flatness gate on the *fresh*
results alone: events/sec at the HIGH scale must be at least RATIO times
events/sec at the LOW scale (e.g. ``--flatness 1000:10000:0.9`` demands the
10k-node throughput stays within 10% of the 1k-node throughput).  Like the
speedup floor, this is a within-run ratio, so it is machine-independent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH_kernel.json")
    parser.add_argument("fresh", type=Path, help="freshly generated BENCH_kernel.json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum tolerated fractional events/sec drop per scale (default 0.20)",
    )
    parser.add_argument(
        "--flatness",
        metavar="LOW:HIGH:RATIO",
        default=None,
        help=(
            "require fresh events/sec at scale HIGH to be at least RATIO x "
            "the fresh events/sec at scale LOW (e.g. 1000:10000:0.9)"
        ),
    )
    args = parser.parse_args()

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    failures: list[str] = []

    groups = ["scales"] + sorted(
        key for key in baseline if key != "scales" and key.endswith("_scales")
    )
    for group in groups:
        fresh_group = fresh.get(group)
        if fresh_group is None:
            failures.append(f"{group}: missing from fresh results")
            continue
        for scale, base in sorted(baseline[group].items(), key=lambda kv: int(kv[0])):
            new = fresh_group.get(scale)
            label = scale if group == "scales" else f"{group}:{scale}"
            if new is None:
                failures.append(f"{label}: missing from fresh results")
                continue
            base_eps = float(base["events_per_sec"])
            new_eps = float(new["events_per_sec"])
            drop = (base_eps - new_eps) / base_eps
            status = "ok" if drop <= args.max_regression else "REGRESSION"
            print(
                f"{label:>18}: baseline {base_eps:>10.0f} ev/s, "
                f"fresh {new_eps:>10.0f} ev/s, change {-drop:+.1%} [{status}]"
            )
            if drop > args.max_regression:
                failures.append(
                    f"{label}: events/sec dropped {drop:.1%} "
                    f"(max allowed {args.max_regression:.0%})"
                )

    if args.flatness is not None:
        low, high, ratio_text = args.flatness.split(":")
        floor = float(ratio_text)
        low_row = fresh["scales"].get(low)
        high_row = fresh["scales"].get(high)
        if low_row is None or high_row is None:
            failures.append(
                f"flatness gate: scales {low} and {high} must both be present"
            )
        else:
            low_eps = float(low_row["events_per_sec"])
            high_eps = float(high_row["events_per_sec"])
            ratio = high_eps / low_eps
            status = "ok" if ratio >= floor else "COLLAPSE"
            print(
                f"flatness {high} vs {low}: {high_eps:>10.0f} / {low_eps:>10.0f} "
                f"ev/s = {ratio:.3f} (floor {floor}) [{status}]"
            )
            if ratio < floor:
                failures.append(
                    f"flatness: {high}-scale throughput is {ratio:.3f}x the "
                    f"{low}-scale throughput (floor {floor})"
                )

    comparisons = sorted(key for key in fresh if key.startswith("comparison"))
    if comparisons or "min_speedup" in fresh:
        floor = float(fresh.get("min_speedup", baseline.get("min_speedup", 2.0)))
        for key in comparisons or ["comparison_1k"]:
            speedup = float(fresh.get(key, {}).get("speedup", 0.0))
            print(f"{key} speedup vs legacy baseline: {speedup:.2f}x (floor {floor}x)")
            if speedup < floor:
                failures.append(
                    f"{key}: speedup {speedup:.2f}x below the {floor}x floor"
                )

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
