"""Protocol data-plane benchmark: indexed coordinator at deep backlogs.

Before the :class:`~repro.core.taskindex.TaskIndex`, every work request
rescanned and re-sorted the whole task table (O(n log n) per scheduling
decision), every replication round walked the table to order the dirty
keys, and every completed-count sample recounted every record.  This
benchmark drives the **live protocol** — 4 unmodified coordinators and 16
servers exchanging WORK_REQUEST / TASK_ASSIGN / TASK_RESULT and ring
replication over the simulated network — against preloaded backlogs of
1k / 10k / 100k pending tasks and measures wall-clock scheduling
throughput at each depth:

* ``scales``            — decisions/sec over a fixed measurement window of
  assignment decisions at steady state; a flat ladder is the O(log n)
  claim (CI gates 100k >= 50% of 1k via ``--flatness``);
* ``comparison_100k``   — the same 100k run head-to-head against the
  legacy scan plane (``use_task_index=False``); CI gates the
  tasks-committed/sec ``speedup`` against ``min_speedup``;
* ``replication_scales``— delta ``build_state`` rounds with a fixed dirty
  set against growing tables: O(dirty) serialization vs the legacy
  filtered table walk;
* ``storm_scales``      — the suspicion storm: a server dies while running
  10% of the table; reschedule latency through the per-server ongoing
  bucket vs the legacy full scan.

Running this file writes ``BENCH_protocol.json`` at the repository root;
CI diffs it against the committed baseline and fails on a >20% events/sec
regression in any group (see ``benchmarks/check_bench_regression.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from dataclasses import dataclass

from repro.config import ProtocolConfig
from repro.core.protocol import CallDescription, TaskRecord, identity_to_key
from repro.core.replication import build_state
from repro.core.taskindex import TaskIndex
from repro.grid.builder import build_grid
from repro.grid.deployment import confined_cluster_spec
from repro.nodes.database import DatabaseModel
from repro.policies.scheduling import FifoReschedulePolicy
from repro.types import Address, CallIdentity, RPCId, SessionId, TaskState, UserId

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_protocol.json"

#: preloaded backlog depths (pending tasks across the whole grid).
SCALES = (1_000, 10_000, 100_000)
N_COORDINATORS = 4
N_SERVERS = 16
#: simulated service time per task; short so the window is scheduler-bound.
EXEC_TIME = 0.01
#: assignment decisions burned in before the measured window opens (lets
#: detectors seed and every server reach steady request cadence).
WARMUP_DECISIONS = 16
#: assignment decisions per measured window.
DECISIONS = 200
#: the head-to-head uses a short window: the legacy plane pays a full
#: 100k-record sort per decision, so every decision costs real wall time.
COMPARISON_WARMUP = 4
COMPARISON_DECISIONS = 16
#: acceptance floor: indexed tasks-committed/sec at 100k vs the legacy scan.
MIN_SPEEDUP = 5.0
#: acceptance floor: decisions/sec at 100k as a fraction of 1k (flat ladder).
MIN_FLATNESS = 0.5
#: best-of runs per scale, interleaved (host noise only slows runs down).
REPS = 3

#: replication microbench: dirty records per round, rounds per measurement.
DELTA_DIRTY = 64
DELTA_ROUNDS = 300
DELTA_LEGACY_ROUNDS = {1_000: 300, 10_000: 100, 100_000: 10}

#: storm microbench: fraction of the table ongoing on the dying server.
STORM_FRACTION = 0.10


def _calls(owner_index: int, count: int) -> list[CallDescription]:
    user = UserId(f"bench{owner_index}")
    return [
        CallDescription(
            identity=CallIdentity(user=user, session=SessionId("s"), rpc=RPCId(rpc)),
            service="sleep",
            params_bytes=64,
            exec_time=EXEC_TIME,
        )
        for rpc in range(count)
    ]


@dataclass
class _FlatScanModel(DatabaseModel):
    """The cluster database with the per-record scan charge zeroed.

    The default model charges 20 us of *simulated* time per record scanned,
    so a deep backlog stretches the simulated seconds per decision ~100x and
    the background protocol traffic (heart-beats, detector ticks, client
    polls) per decision along with it.  A flat scan charge keeps the
    simulated workload identical at every scale, so the ladder isolates the
    one thing that varies: the data plane's wall cost against table depth.
    """

    def scan_time(self, n_records: int) -> float:
        return self.scan_latency


def _build_grid(backlog: int, use_index: bool):
    protocol = ProtocolConfig()
    protocol.coordinator.use_task_index = use_index
    #: long enough that rounds don't dominate the window, short enough that
    #: every run exercises live delta rounds.
    protocol.coordinator.replication.period = 10.0
    spec = confined_cluster_spec(
        n_servers=N_SERVERS,
        n_coordinators=N_COORDINATORS,
        n_clients=1,  # the spec floor; it submits nothing, the backlog is preloaded
        protocol=protocol,
        seed=11,
    )
    spec.coordinator_database = _FlatScanModel()
    # The confined cluster's spread attachment: servers round-robin over the
    # coordinators ("several server partitions ... different coordinators").
    names = [f"cluster-k{i}" for i in range(N_COORDINATORS)]
    grid = build_grid(spec, server_preferred=lambda idx, _site: names[idx % len(names)])
    grid.start()
    # Disjoint per-coordinator backlogs, seeded as already-replicated steady
    # state (mark_dirty=False): the window measures the scheduling plane, not
    # an initial full-table replication storm.
    per_coordinator = backlog // N_COORDINATORS
    for index, coordinator in enumerate(grid.coordinators):
        coordinator.preload_tasks(_calls(index, per_coordinator), mark_dirty=False)
    return grid


def _advance_until_assignments(grid, target: int, step: float = 0.5) -> None:
    assignments = grid.monitor.counter("coordinator.assignments")
    deadline = grid.env.now + 4000.0
    while assignments.value < target and grid.env.now < deadline:
        grid.env.run(until=grid.env.now + step)
    assert assignments.value >= target, (assignments.value, target, grid.env.now)


def _run_protocol(backlog: int, use_index: bool, warmup: int, decisions: int) -> dict:
    grid = _build_grid(backlog, use_index)
    assignments = grid.monitor.counter("coordinator.assignments")
    committed = grid.monitor.counter("coordinator.results")
    replications = grid.monitor.counter("coordinator.replications")

    _advance_until_assignments(grid, warmup)
    start_assignments = assignments.value
    start_committed = committed.value
    start_replications = replications.value
    start_sim = grid.env.now
    start = time.perf_counter()
    _advance_until_assignments(grid, start_assignments + decisions)
    wall = time.perf_counter() - start

    window_decisions = int(assignments.value - start_assignments)
    window_committed = int(committed.value - start_committed)
    assert window_decisions >= decisions
    assert window_committed > 0, (window_committed, backlog, use_index)
    return {
        "backlog": backlog,
        "coordinators": N_COORDINATORS,
        "servers": N_SERVERS,
        "use_task_index": use_index,
        "wall_seconds": round(wall, 4),
        "sim_seconds": round(grid.env.now - start_sim, 2),
        "decisions": window_decisions,
        "tasks_committed": window_committed,
        "replication_rounds": int(replications.value - start_replications),
        "decisions_per_sec": round(window_decisions / wall, 1),
        "committed_per_sec": round(window_committed / wall, 1),
        "events_per_sec": round(window_decisions / wall, 1),
    }


# ---------------------------------------------------------------- microbenches
def _build_table(n: int, ongoing_fraction: float = 0.0, server: Address | None = None):
    """A bare task table (plus index) for the machinery-level microbenches."""
    tasks = {}
    cutoff = int(n * ongoing_fraction)
    for counter, call in enumerate(_calls(0, n)):
        record_state = TaskState.ONGOING if counter < cutoff else TaskState.PENDING
        key = identity_to_key(call.identity)
        record = TaskRecord(
            call=call, state=record_state, owner="k0", submitted_at=float(counter)
        )
        if record_state is TaskState.ONGOING:
            record.assigned_server = server
        tasks[key] = record
    return tasks


def _run_delta(n: int) -> dict:
    """Fixed-size delta rounds against a growing table: O(dirty) vs O(n)."""
    tasks = _build_table(n)
    index = TaskIndex(tasks)
    stride = max(n // DELTA_DIRTY, 1)
    dirty = list(tasks)[::stride][:DELTA_DIRTY]
    dirty_set = set(dirty)

    start = time.perf_counter()
    for _ in range(DELTA_ROUNDS):
        # What one live round costs: the transitions invalidate the entry
        # cache (note), then the abstract serializes only the dirty keys.
        for key in dirty:
            index.note(tasks[key], key)
        state = build_state(
            "k0", tasks, {}, [],
            only_keys=index.table_ordered(dirty_set),
            entry_for=index.replica_entry,
        )
    indexed_wall = time.perf_counter() - start
    assert len(state.entries) == len(dirty)

    legacy_rounds = DELTA_LEGACY_ROUNDS[n]
    start = time.perf_counter()
    for _ in range(legacy_rounds):
        keys = [key for key in tasks if key in dirty_set]  # the old table walk
        legacy_state = build_state("k0", tasks, {}, [], only_keys=keys)
    legacy_wall = time.perf_counter() - start
    assert [e["call"]["identity"] for e in legacy_state.entries] == [
        e["call"]["identity"] for e in state.entries
    ]

    rounds_per_sec = DELTA_ROUNDS / indexed_wall
    legacy_rounds_per_sec = legacy_rounds / legacy_wall
    return {
        "table_records": n,
        "dirty_per_round": len(dirty),
        "rounds": DELTA_ROUNDS,
        "wall_seconds": round(indexed_wall, 4),
        "rounds_per_sec": round(rounds_per_sec, 1),
        "legacy_rounds_per_sec": round(legacy_rounds_per_sec, 1),
        "round_speedup": round(rounds_per_sec / legacy_rounds_per_sec, 2),
        "events_per_sec": round(rounds_per_sec, 1),
    }


def _run_storm(n: int) -> dict:
    """Kill the server running 10% of the table; measure reschedule latency."""
    dead = Address("server", "s00")
    expected = int(n * STORM_FRACTION)

    def measure(use_index: bool) -> tuple[float, int]:
        tasks = _build_table(n, ongoing_fraction=STORM_FRACTION, server=dead)
        index = TaskIndex(tasks) if use_index else None
        policy = FifoReschedulePolicy()
        start = time.perf_counter()
        reset = policy.reschedule_for_suspected_server(tasks, dead, "k0", index=index)
        if index is not None:
            for record in reset:  # the coordinator re-notes every reset task
                index.note(record)
        wall = time.perf_counter() - start
        return wall, len(reset)

    indexed_wall, indexed_reset = measure(use_index=True)
    legacy_wall, legacy_reset = measure(use_index=False)
    assert indexed_reset == legacy_reset == expected

    rescheduled_per_sec = indexed_reset / indexed_wall
    return {
        "table_records": n,
        "ongoing_on_dead_server": indexed_reset,
        "wall_seconds": round(indexed_wall, 6),
        "reschedule_latency_ms": round(indexed_wall * 1000, 3),
        "legacy_latency_ms": round(legacy_wall * 1000, 3),
        "latency_speedup": round(legacy_wall / indexed_wall, 2),
        "events_per_sec": round(rescheduled_per_sec, 1),
    }


def _pick_best(runs_by_scale: dict[int, list[dict]]) -> dict[str, dict]:
    results = {}
    for scale, runs in runs_by_scale.items():
        result = max(runs, key=lambda r: r["events_per_sec"])
        result["events_per_sec_runs"] = [r["events_per_sec"] for r in runs]
        results[str(scale)] = result
    return results


def test_protocol_benchmark_writes_bench_json():
    # Reps are interleaved across scales and workloads (1k, 10k, 100k ladder,
    # the two comparison runs, the microbenches, then the next rep of each)
    # so one slow host phase cannot sink a whole scale's block.
    ladder_runs: dict[int, list[dict]] = {n: [] for n in SCALES}
    indexed_cmp_runs: list[dict] = []
    legacy_cmp_runs: list[dict] = []
    delta_runs: dict[int, list[dict]] = {n: [] for n in SCALES}
    storm_runs: dict[int, list[dict]] = {n: [] for n in SCALES}
    for _ in range(REPS):
        for backlog in SCALES:
            ladder_runs[backlog].append(
                _run_protocol(backlog, True, WARMUP_DECISIONS, DECISIONS)
            )
        indexed_cmp_runs.append(
            _run_protocol(SCALES[-1], True, COMPARISON_WARMUP, COMPARISON_DECISIONS)
        )
        legacy_cmp_runs.append(
            _run_protocol(SCALES[-1], False, COMPARISON_WARMUP, COMPARISON_DECISIONS)
        )
        for n in SCALES:
            delta_runs[n].append(_run_delta(n))
            storm_runs[n].append(_run_storm(n))

    scales = _pick_best(ladder_runs)
    indexed_cmp = max(indexed_cmp_runs, key=lambda r: r["committed_per_sec"])
    legacy_cmp = max(legacy_cmp_runs, key=lambda r: r["committed_per_sec"])

    # The tentpole floors, asserted here as well as gated in CI:
    # a flat decisions/sec ladder (O(log n) scheduling at 100x the backlog) …
    low = scales[str(SCALES[0])]["decisions_per_sec"]
    high = scales[str(SCALES[-1])]["decisions_per_sec"]
    assert high >= MIN_FLATNESS * low, (low, high)
    # … and the head-to-head: the indexed plane commits tasks >= MIN_SPEEDUP
    # times faster than the legacy scan plane at the 100k backlog.
    speedup = indexed_cmp["committed_per_sec"] / legacy_cmp["committed_per_sec"]
    comparison = {
        "backlog": SCALES[-1],
        "indexed": indexed_cmp,
        "legacy": legacy_cmp,
        "decisions_speedup": round(
            indexed_cmp["decisions_per_sec"] / legacy_cmp["decisions_per_sec"], 2
        ),
        "speedup": round(speedup, 2),
    }
    assert speedup >= MIN_SPEEDUP, comparison

    payload = {
        "benchmark": "protocol-indexed-data-plane",
        "exec_time": EXEC_TIME,
        "decisions_per_window": DECISIONS,
        "metric": (
            "events_per_sec = scheduling decisions/sec over a fixed window "
            "of live WORK_REQUEST->TASK_ASSIGN decisions at steady state "
            "(4 coordinators / 16 servers, preloaded backlog); "
            "replication_scales = fixed-dirty delta build rounds/sec; "
            "storm_scales = tasks rescheduled/sec when a server running "
            "10% of the table dies; comparison_100k gates committed/sec "
            "vs the legacy use_task_index=False plane"
        ),
        "min_speedup": MIN_SPEEDUP,
        "scales": scales,
        "replication_scales": _pick_best(delta_runs),
        "storm_scales": _pick_best(storm_runs),
        "comparison_100k": comparison,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nBENCH_protocol.json: {json.dumps(payload['scales'], indent=2)}")
    print(f"comparison_100k: speedup {comparison['speedup']}x")
