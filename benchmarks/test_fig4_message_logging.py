"""Benchmark for Figure 4 — message-logging strategies."""

from repro.experiments import run_fig4_vs_calls, run_fig4_vs_size
from repro.experiments.common import print_rows
from repro.types import LoggingStrategy


def test_fig4_submission_time_vs_size(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig4_vs_size(sizes=[1_000, 100_000, 10_000_000], n_calls=8),
        rounds=1, iterations=1,
    )
    print_rows(rows, title="Figure 4 (left): RPC submission time vs parameter size")
    blocking = LoggingStrategy.PESSIMISTIC_BLOCKING.value
    optimistic = LoggingStrategy.OPTIMISTIC.value
    for row in rows:
        assert row[blocking] > row[optimistic]


def test_fig4_submission_time_vs_calls(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig4_vs_calls(counts=[1, 10, 100]), rounds=1, iterations=1
    )
    print_rows(rows, title="Figure 4 (right): RPC submission time vs number of calls")
    assert rows[-1][LoggingStrategy.OPTIMISTIC.value] > rows[0][LoggingStrategy.OPTIMISTIC.value]
