"""Crowd-tier performance benchmark: statistical clients at 100k-1M scale.

The full-protocol client tier tops out around 10k nodes (one Python object
plus generator processes per client — see ``BENCH_transport.json``).  The
crowd tier (:mod:`repro.crowd`) holds the whole population as numpy
struct-of-arrays columns advanced in one vectorized ``tick()`` per scheduler
period and talks to **live, unmodified** full-protocol coordinators and
servers through aggregated batch envelopes, which is what this benchmark
measures: a 100k/500k/1M-client crowd submitting through a sharded
4-coordinator / 8-server core, every client completing end to end.

Running this file writes ``BENCH_crowd.json`` at the repository root with
crowd-client-ticks/sec (population rows advanced per wall second) and
kernel events/sec at each scale; CI diffs it against the committed baseline
and fails on a >20% events/sec regression (see
``benchmarks/check_bench_regression.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.scenarios.engine import FaultPlan, GridTopology, WorkloadSpec, execute_benchmark

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_crowd.json"

#: crowd sizes measured (the ISSUE's 100k / 500k / 1M ladder).
SCALES = (100_000, 500_000, 1_000_000)
#: full-protocol core serving the crowd (live coordinators + servers).
N_COORDINATORS = 4
N_SERVERS = 8
#: arrivals spread over this window; the run must drain it completely.
THINK_WINDOW = 40.0
HORIZON = 120.0
TICK_PERIOD = 1.0
#: aggregate service time per member call (keeps the server pool loaded but
#: never saturated, so completion bounds the virtual — not wall — clock).
EXEC_TIME_PER_CALL = 1e-5

#: acceptance floor: population rows advanced per wall second at 100k.
MIN_CROWD_TICKS_PER_SEC = 1_000_000

#: best-of runs per scale (same rationale as the kernel benchmark: host
#: scheduling and memory pressure only ever slow a run down, so the best of
#: a few interleaved reps is the unbiased estimate — and keeps noisy runs
#: out of the committed baseline).
REPS = 3


def _run_scale(n_clients: int) -> dict:
    start = time.perf_counter()
    report = execute_benchmark(
        topology=GridTopology(
            n_servers=N_SERVERS,
            n_coordinators=N_COORDINATORS,
            spread_servers=True,
        ),
        # A token full-protocol workload rides along so the classic client
        # path stays exercised next to the crowd.
        workload=WorkloadSpec(n_calls=2, exec_time=0.5),
        faults=FaultPlan(),
        seed=7,
        horizon=HORIZON,
        run_full_horizon=True,
        record_kernel=True,
        components=[
            {
                "name": "tier.crowd",
                "params": {
                    "n_clients": n_clients,
                    "think_window": THINK_WINDOW,
                    "tick_period": TICK_PERIOD,
                    "exec_time_per_call": EXEC_TIME_PER_CALL,
                    "retry_timeout": 10.0,
                    "result_patience": 40.0,
                },
            }
        ],
    )
    wall = time.perf_counter() - start

    crowd = report.crowd or {}
    kernel = report.kernel or {}
    # Every statistical client must complete end to end against the live
    # coordinator/server core — the crowd is a protocol participant, not a
    # detached counter loop.
    assert crowd.get("completed", 0) == n_clients, crowd
    assert crowd.get("duplicate_completions", 0) == 0, crowd
    assert report.completed >= report.submitted, (report.completed, report.submitted)

    client_ticks = int(crowd.get("client_ticks", 0))
    events = int(kernel.get("events_processed", 0))
    return {
        "clients": n_clients,
        "coordinators": N_COORDINATORS,
        "servers": N_SERVERS,
        "wall_seconds": round(wall, 4),
        "ticks": int(crowd.get("ticks", 0)),
        "client_ticks": client_ticks,
        "batches_sent": int(crowd.get("batches_sent", 0)),
        "batch_resends": int(crowd.get("batch_resends", 0)),
        "completed": int(crowd.get("completed", 0)),
        "max_queue_depth": int(crowd.get("max_queue_depth", 0)),
        "events_processed": events,
        "crowd_ticks_per_sec": round(client_ticks / wall, 1),
        "events_per_sec": round((client_ticks + events) / wall, 1),
    }


def test_crowd_benchmark_writes_bench_json():
    # Reps are interleaved across scales (100k, 500k, 1M, 100k, ...) so a
    # slow host phase cannot sink one scale's whole block.
    runs_by_scale: dict[int, list[dict]] = {n: [] for n in SCALES}
    for _ in range(REPS):
        for n_clients in SCALES:
            runs_by_scale[n_clients].append(_run_scale(n_clients))
    scales = {}
    for n_clients, runs in runs_by_scale.items():
        result = max(runs, key=lambda r: r["events_per_sec"])
        result["events_per_sec_runs"] = [r["events_per_sec"] for r in runs]
        scales[str(n_clients)] = result

    # The tentpole acceptance floor: >=100k clients advancing against live
    # full-protocol coordinators/servers at >=1M crowd-client-ticks/sec.
    floor = scales[str(SCALES[0])]["crowd_ticks_per_sec"]
    assert floor >= MIN_CROWD_TICKS_PER_SEC, scales[str(SCALES[0])]

    payload = {
        "benchmark": "crowd-tier",
        "think_window": THINK_WINDOW,
        "tick_period": TICK_PERIOD,
        "exec_time_per_call": EXEC_TIME_PER_CALL,
        "metric": (
            "crowd_ticks_per_sec = population rows advanced (clients x "
            "ticks) / wall seconds; events_per_sec adds the kernel events "
            "of the live coordinator/server core serving the aggregated "
            "batch envelopes; every client completes end to end"
        ),
        "scales": scales,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nBENCH_crowd.json: {json.dumps(scales, indent=2)}")
