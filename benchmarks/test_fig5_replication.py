"""Benchmark for Figure 5 — coordinator replication time."""

from repro.experiments import run_fig5_vs_count, run_fig5_vs_size
from repro.experiments.common import print_rows


def test_fig5_replication_vs_size(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig5_vs_size(sizes=[1_000, 100_000, 10_000_000], n_tasks=16),
        rounds=1, iterations=1,
    )
    print_rows(rows, title="Figure 5 (left): replication time vs RPC data size")
    assert rows[-1]["confined"] > rows[0]["confined"]
    # Reduced Internet bandwidth separates the curves at large sizes.
    assert rows[-1]["internet"] > rows[-1]["confined"]


def test_fig5_replication_vs_count(benchmark):
    rows = benchmark.pedantic(
        lambda: run_fig5_vs_count(counts=[1, 10, 100]), rounds=1, iterations=1
    )
    print_rows(rows, title="Figure 5 (right): replication time vs number of tasks")
    assert rows[-1]["confined"] > rows[0]["confined"]
