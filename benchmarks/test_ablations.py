"""Ablation benchmarks: what the RPC-V combination buys, and detector tuning."""

from repro.experiments import run_baseline_ablation, run_detector_ablation
from repro.experiments.common import print_rows


def test_ablation_baselines_under_coordinator_faults(benchmark):
    rows = benchmark.pedantic(
        lambda: run_baseline_ablation(
            faults_per_minute=4.0, fault_target="coordinators", seeds=(7,),
            n_calls=24, exec_time=5.0, horizon=3000.0,
        ),
        rounds=1, iterations=1,
    )
    print_rows(rows, title="Ablation: RPC-V vs baselines under coordinator faults")
    by_system = {row["system"]: row for row in rows}
    assert by_system["rpc-v"]["mean_completion_ratio"] == 1.0


def test_ablation_detector_tradeoff(benchmark):
    rows = benchmark.pedantic(lambda: run_detector_ablation(), rounds=1, iterations=1)
    print_rows(rows, title="Ablation: heart-beat period / suspicion timeout trade-off")
    assert len(rows) == 9
